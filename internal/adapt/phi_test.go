package adapt

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPhi1(t *testing.T) {
	cases := []struct {
		t1, t2 float64
		want   float64
	}{
		{0, 0, 0},
		{10, 0, 1},
		{0, 10, -1},
		{5, 5, 0},
		{3, 1, 0.5},
	}
	for _, c := range cases {
		if got := Phi1(c.t1, c.t2); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Phi1(%v,%v) = %v, want %v", c.t1, c.t2, got, c.want)
		}
	}
}

func TestPhi1PanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Phi1(-1,0) did not panic")
		}
	}()
	Phi1(-1, 0)
}

func TestPhi2ExpSaturation(t *testing.T) {
	const W = 8
	if got := Phi2Exp(W, W); got != 1 {
		t.Errorf("Phi2Exp(W,W) = %v, want 1", got)
	}
	if got := Phi2Exp(-W, W); got != -1 {
		t.Errorf("Phi2Exp(-W,W) = %v, want -1", got)
	}
	if got := Phi2Exp(0, W); got != 0 {
		t.Errorf("Phi2Exp(0,W) = %v, want 0", got)
	}
	// Monotone in w for w > 0.
	prev := 0.0
	for w := 1; w <= W; w++ {
		got := Phi2Exp(w, W)
		if got <= prev {
			t.Fatalf("Phi2Exp not increasing at w=%d: %v <= %v", w, got, prev)
		}
		prev = got
	}
}

func TestPhi2Lin(t *testing.T) {
	if got := Phi2Lin(4, 8); got != 0.5 {
		t.Errorf("Phi2Lin(4,8) = %v, want 0.5", got)
	}
	if got := Phi2Lin(-8, 8); got != -1 {
		t.Errorf("Phi2Lin(-8,8) = %v, want -1", got)
	}
}

func TestPhi2Panics(t *testing.T) {
	for _, f := range []func(){
		func() { Phi2Exp(1, 0) },
		func() { Phi2Lin(1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("zero window did not panic")
				}
			}()
			f()
		}()
	}
}

func TestPhi3Anchors(t *testing.T) {
	const D, C = 25, 100
	if got := Phi3(0, D, C); got != -1 {
		t.Errorf("Phi3(0) = %v, want -1", got)
	}
	if got := Phi3(D, D, C); got != 0 {
		t.Errorf("Phi3(D) = %v, want 0", got)
	}
	if got := Phi3(C, D, C); got != 1 {
		t.Errorf("Phi3(C) = %v, want 1", got)
	}
	// Piecewise slopes: below D uses /D, above uses /(C-D).
	if got := Phi3(D/2.0, D, C); math.Abs(got+0.5) > 1e-12 {
		t.Errorf("Phi3(D/2) = %v, want -0.5", got)
	}
	mid := float64(D) + float64(C-D)/2
	if got := Phi3(mid, D, C); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Phi3(midpoint) = %v, want 0.5", got)
	}
}

func TestPhi3Panics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Phi3 with D >= C did not panic")
		}
	}()
	Phi3(1, 10, 10)
}

// Property: every load factor stays in [-1, 1] for arbitrary legal inputs.
func TestPhiRangeProperty(t *testing.T) {
	inRange := func(v float64) bool { return v >= -1 && v <= 1 && !math.IsNaN(v) }
	f := func(a, b uint32, wRaw int16, windowRaw uint8, dbarRaw uint16) bool {
		window := int(windowRaw%64) + 1
		w := int(wRaw) % (window + 1)
		const D, C = 16, 64
		dbar := float64(dbarRaw % (C + 1))
		return inRange(Phi1(float64(a), float64(b))) &&
			inRange(Phi2Exp(w, window)) &&
			inRange(Phi2Lin(w, window)) &&
			inRange(Phi3(dbar, D, C))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
