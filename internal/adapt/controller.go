package adapt

import (
	"fmt"
	"math"
	"sync"
)

// Adjustment records one parameter update made by the controller.
type Adjustment struct {
	// Param is the parameter's name.
	Param string
	// Old and New are the values before and after the update.
	Old, New float64
	// DeltaP is the canonical ΔP that produced the move (before Step and
	// Direction scaling).
	DeltaP float64
}

// Controller runs the Section 4 algorithm for one server (stage instance):
// it owns the server's Monitor, collects the exceptions reported by the
// downstream server (T1/T2), and periodically applies the ΔP law to every
// adjustment parameter the stage registered. Controller is safe for
// concurrent use: the data path reads parameter values while the adaptation
// loop observes and adjusts.
type Controller struct {
	opts Options

	mu       sync.Mutex
	mon      *Monitor
	params   []*Param
	byName   map[string]*Param
	epochT1  float64 // downstream overload exceptions this adjustment epoch
	epochT2  float64 // downstream underload exceptions this adjustment epoch
	sigma1   *volatility
	sigma2   *volatility
	lastObs  Observation
	adjusted uint64
}

// NewController returns a controller for a server whose input queue has the
// options' capacity. Invalid options panic (see NewMonitor).
func NewController(opts Options) *Controller {
	opts.fill()
	m := NewMonitor(opts) // validates
	opts = m.Options()
	return &Controller{
		opts:   opts,
		mon:    m,
		byName: make(map[string]*Param),
		sigma1: newVolatility(opts.SigmaWindow, opts.SigmaFloor, opts.SigmaVolatility),
		sigma2: newVolatility(opts.SigmaWindow, opts.SigmaFloor, opts.SigmaVolatility),
	}
}

// Options returns the controller's filled options.
func (c *Controller) Options() Options { return c.opts }

// Register exposes an adjustment parameter to the middleware — the paper's
// specifyPara. It returns the live Param whose Value the processing code
// polls.
func (c *Controller) Register(spec ParamSpec) (*Param, error) {
	p, err := NewParam(spec)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.byName[spec.Name]; dup {
		return nil, fmt.Errorf("adapt: parameter %q already registered", spec.Name)
	}
	c.params = append(c.params, p)
	c.byName[spec.Name] = p
	return p, nil
}

// Param returns a registered parameter by name.
func (c *Controller) Param(name string) (*Param, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.byName[name]
	return p, ok
}

// Params returns the registered parameters in registration order.
func (c *Controller) Params() []*Param {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Param, len(c.params))
	copy(out, c.params)
	return out
}

// Observe feeds one sample of the server's queue length and returns the
// observation; its Exception field, when not ExceptionNone, must be
// delivered to the preceding server (the pipeline engine does this).
func (c *Controller) Observe(d int) Observation {
	c.mu.Lock()
	defer c.mu.Unlock()
	obs := c.mon.Observe(d)
	c.lastObs = obs
	return obs
}

// LastObservation returns the most recent observation (zero value before the
// first Observe).
func (c *Controller) LastObservation() Observation {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastObs
}

// DTilde returns the server's current long-term average queue size factor.
func (c *Controller) DTilde() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mon.DTilde()
}

// OnDownstreamException records an exception reported by the next server in
// the pipeline. The counts accumulate until the next Adjust call (one
// adjustment epoch), which is what makes φ1(T1,T2) reflect the downstream
// load during the current epoch rather than the whole run.
func (c *Controller) OnDownstreamException(e Exception) {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch e {
	case ExceptionOverload:
		c.epochT1++
	case ExceptionUnderload:
		c.epochT2++
	}
}

// DownstreamEpochCounts returns the exception counts (T1, T2) accumulated in
// the current adjustment epoch.
func (c *Controller) DownstreamEpochCounts() (t1, t2 float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epochT1, c.epochT2
}

// AdjustResult captures one adjustment epoch in full: the inputs the ΔP law
// consumed (d̃ and its normalized form, the downstream exception counts
// T1/T2 that this epoch reset, the combined φ1 pressure) and the outputs
// (the canonical ΔP and every parameter move). It is the raw material of the
// adaptation audit trail.
type AdjustResult struct {
	// DTilde is the long-term average queue size factor at adjustment time.
	DTilde float64
	// DNorm is d̃ normalized by queue capacity (after congestion-priority
	// clamping, i.e. the value actually fed to σ1).
	DNorm float64
	// T1 and T2 are the downstream overload/underload exception counts
	// consumed — and reset — by this epoch.
	T1, T2 float64
	// PhiT is φ1(T1,T2) after congestion-priority clamping.
	PhiT float64
	// DeltaP is the canonical ΔP (after Gain, before per-parameter
	// Step/Direction scaling).
	DeltaP float64
	// Adjustments are the individual parameter moves (empty when the stage
	// registered no adjustment parameters).
	Adjustments []Adjustment
}

// Adjust applies the ΔP law once to every registered parameter and starts a
// new adjustment epoch. It returns the adjustments made (empty when no
// parameter is registered).
//
//	ΔP = (d̃/C)·σ1(d̃/C) ± φ1(T1,T2)·σ2(φ1(T1,T2))
//
// σ1 and σ2 are volatility gains: they grow with the recent standard
// deviation of their input (an unsteady system takes big steps) and never
// fall below SigmaFloor (a settled system can still creep toward the
// optimum). The ± is the DownstreamSign option. The canonical ΔP is then
// scaled by Gain and each parameter's Step/Direction.
func (c *Controller) Adjust() []Adjustment {
	return c.AdjustDetailed().Adjustments
}

// AdjustDetailed is Adjust plus the epoch's full observation record; see
// AdjustResult.
func (c *Controller) AdjustDetailed() AdjustResult {
	c.mu.Lock()
	defer c.mu.Unlock()

	dTilde := c.mon.DTilde()
	t1, t2 := c.epochT1, c.epochT2
	dNorm := dTilde / float64(c.opts.Capacity)
	phiT := Phi1(c.epochT1, c.epochT2)
	c.epochT1, c.epochT2 = 0, 0

	if !c.opts.DisableCongestionPriority {
		// Congestion dominates slack: a starving downstream does not
		// get more data while this server's own queue is congested,
		// and local slack does not speed this server up while
		// downstream reports overload.
		if phiT < 0 && dNorm > 0 {
			phiT = 0
		} else if phiT > 0 && dNorm < 0 {
			dNorm = 0
		}
	}

	s1 := c.sigma1.observe(dNorm)
	s2 := c.sigma2.observe(phiT)

	deltaP := dNorm * s1
	switch c.opts.DownstreamSign {
	case SignLiteral:
		deltaP -= phiT * s2
	default: // SignReinforcing
		deltaP += phiT * s2
	}
	deltaP *= c.opts.Gain
	c.adjusted++

	out := make([]Adjustment, 0, len(c.params))
	for _, p := range c.params {
		old, now := p.adjust(deltaP)
		out = append(out, Adjustment{Param: p.Spec().Name, Old: old, New: now, DeltaP: deltaP})
	}
	return AdjustResult{
		DTilde:      dTilde,
		DNorm:       dNorm,
		T1:          t1,
		T2:          t2,
		PhiT:        phiT,
		DeltaP:      deltaP,
		Adjustments: out,
	}
}

// Adjustments returns how many adjustment epochs have completed.
func (c *Controller) Adjustments() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.adjusted
}

// volatility tracks the recent standard deviation of a signal and turns it
// into the σ gain of Equation 4.
type volatility struct {
	ring  []float64
	idx   int
	n     int
	floor float64
	gain  float64
}

func newVolatility(window int, floor, gain float64) *volatility {
	return &volatility{ring: make([]float64, window), floor: floor, gain: gain}
}

// observe records v and returns σ = floor + gain·stddev(recent values).
func (v *volatility) observe(x float64) float64 {
	v.ring[v.idx] = x
	v.idx = (v.idx + 1) % len(v.ring)
	if v.n < len(v.ring) {
		v.n++
	}
	if v.n < 2 {
		return v.floor
	}
	var sum float64
	for i := 0; i < v.n; i++ {
		sum += v.ring[i]
	}
	mean := sum / float64(v.n)
	var ss float64
	for i := 0; i < v.n; i++ {
		d := v.ring[i] - mean
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(v.n))
	return v.floor + v.gain*sd
}
