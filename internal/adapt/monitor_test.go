package adapt

import (
	"math"
	"testing"
	"testing/quick"
)

func TestOptionsDefaults(t *testing.T) {
	o := Defaults(100)
	if err := o.Validate(); err != nil {
		t.Fatalf("Defaults(100) invalid: %v", err)
	}
	if o.ExpectedLen != 25 {
		t.Fatalf("default ExpectedLen = %d, want 25", o.ExpectedLen)
	}
	if sum := o.P1 + o.P2 + o.P3; math.Abs(sum-1) > 1e-12 {
		t.Fatalf("default weights sum to %v", sum)
	}
}

func TestOptionsValidateRejects(t *testing.T) {
	bad := []func(*Options){
		func(o *Options) { o.Capacity = 0 },
		func(o *Options) { o.ExpectedLen = o.Capacity },
		func(o *Options) { o.Alpha = 1.5 },
		func(o *Options) { o.Window = -1; o.Alpha = 0.5 }, // Window<1 after fill only if set negative
		func(o *Options) { o.P1, o.P2, o.P3 = 0.5, 0.5, 0.5 },
		func(o *Options) { o.P1, o.P2, o.P3 = -0.5, 0.5, 1.0 },
		func(o *Options) { o.LowThreshold, o.HighThreshold = 0.5, 0.25 },
		func(o *Options) { o.LowThreshold, o.HighThreshold = -2, 0.25 },
		func(o *Options) { o.OverFrac, o.UnderFrac = 0.1, 0.5 },
		func(o *Options) { o.LongTermDecay = 1.5 },
		func(o *Options) { o.Gain = -1 },
		func(o *Options) { o.SigmaFloor = -0.1 },
		func(o *Options) { o.SigmaWindow = 1 },
	}
	for i, mutate := range bad {
		o := Defaults(100)
		mutate(&o)
		if err := o.Validate(); err == nil {
			t.Errorf("case %d: invalid options accepted", i)
		}
	}
}

func TestNewMonitorPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewMonitor with zero capacity did not panic")
		}
	}()
	NewMonitor(Options{})
}

func TestMonitorClassification(t *testing.T) {
	o := Defaults(100) // D=25, OverFrac=0.25, UnderFrac=0.0625
	m := NewMonitor(o)
	if obs := m.Observe(90); obs.Class != LoadOver {
		t.Fatalf("d=90 classified %v, want over", obs.Class)
	}
	if obs := m.Observe(2); obs.Class != LoadUnder {
		t.Fatalf("d=2 classified %v, want under", obs.Class)
	}
	if obs := m.Observe(15); obs.Class != LoadNormal {
		t.Fatalf("d=15 classified %v, want normal", obs.Class)
	}
}

func TestMonitorClampsInput(t *testing.T) {
	m := NewMonitor(Defaults(100))
	if obs := m.Observe(-5); obs.D != 0 {
		t.Fatalf("negative d recorded as %d", obs.D)
	}
	if obs := m.Observe(10_000); obs.D != 100 {
		t.Fatalf("oversized d recorded as %d", obs.D)
	}
}

func TestMonitorOverloadRaisesDTildeAndException(t *testing.T) {
	m := NewMonitor(Defaults(100))
	var last Observation
	for i := 0; i < 50; i++ {
		last = m.Observe(95)
	}
	if last.DTilde <= 0 {
		t.Fatalf("sustained full queue left d̃ = %v", last.DTilde)
	}
	if last.Exception != ExceptionOverload {
		t.Fatalf("sustained full queue produced exception %v, want overload", last.Exception)
	}
}

func TestMonitorUnderloadException(t *testing.T) {
	m := NewMonitor(Defaults(100))
	var last Observation
	for i := 0; i < 50; i++ {
		last = m.Observe(0)
	}
	if last.DTilde >= 0 {
		t.Fatalf("sustained empty queue left d̃ = %v", last.DTilde)
	}
	if last.Exception != ExceptionUnderload {
		t.Fatalf("sustained empty queue produced exception %v, want underload", last.Exception)
	}
}

func TestMonitorNormalLoadNoException(t *testing.T) {
	o := Defaults(100) // D = 25
	m := NewMonitor(o)
	var last Observation
	for i := 0; i < 100; i++ {
		last = m.Observe(25) // exactly the expected length
	}
	if last.Exception != ExceptionNone {
		t.Fatalf("expected-length queue produced exception %v (d̃=%v)", last.Exception, last.DTilde)
	}
}

func TestMonitorDBarWindow(t *testing.T) {
	o := Defaults(100)
	o.Window = 4
	m := NewMonitor(o)
	for _, d := range []int{10, 20, 30, 40} {
		m.Observe(d)
	}
	obs := m.Observe(50) // window now 20,30,40,50
	if obs.DBar != 35 {
		t.Fatalf("d̄ = %v, want 35", obs.DBar)
	}
}

func TestMonitorRecoveryAfterTransient(t *testing.T) {
	// With decay enabled, an early overload transient must not hold d̃
	// above the exception threshold once load normalizes.
	m := NewMonitor(Defaults(100))
	for i := 0; i < 100; i++ {
		m.Observe(95)
	}
	var last Observation
	for i := 0; i < 600; i++ {
		last = m.Observe(25)
	}
	if last.Exception == ExceptionOverload {
		t.Fatalf("overload exception persisted after recovery (d̃=%v)", last.DTilde)
	}
}

func TestMonitorLiteralCumulativeCounters(t *testing.T) {
	// With LongTermDecay=1 (the paper's literal counters), the early
	// transient keeps φ1 positive long after recovery.
	o := Defaults(100)
	o.LongTermDecay = 1
	m := NewMonitor(o)
	for i := 0; i < 100; i++ {
		m.Observe(95)
	}
	obs := m.Observe(25)
	if obs.Phi1 <= 0.9 {
		t.Fatalf("literal φ1 = %v after 100 overloads + 1 normal, want > 0.9", obs.Phi1)
	}
}

func TestMonitorTicks(t *testing.T) {
	m := NewMonitor(Defaults(10))
	m.Observe(1)
	m.Observe(2)
	if m.Ticks() != 2 {
		t.Fatalf("Ticks = %d, want 2", m.Ticks())
	}
}

// Property: d̃ always stays within [-C, C] and never becomes NaN, for any
// observation sequence.
func TestDTildeBoundedProperty(t *testing.T) {
	f := func(samples []uint16, capRaw uint8) bool {
		capacity := int(capRaw%200) + 8
		m := NewMonitor(Defaults(capacity))
		c := float64(capacity)
		for _, s := range samples {
			obs := m.Observe(int(s) % (capacity + 10))
			if math.IsNaN(obs.DTilde) || obs.DTilde < -c || obs.DTilde > c {
				return false
			}
			if math.IsNaN(obs.Phi1) || math.IsNaN(obs.Phi2) || math.IsNaN(obs.Phi3) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLoadClassAndExceptionStrings(t *testing.T) {
	if LoadOver.String() != "over" || LoadUnder.String() != "under" || LoadNormal.String() != "normal" {
		t.Fatal("LoadClass.String mismatch")
	}
	if ExceptionOverload.String() != "overload" || ExceptionUnderload.String() != "underload" || ExceptionNone.String() != "none" {
		t.Fatal("Exception.String mismatch")
	}
	if LoadClass(99).String() != "invalid" || Exception(99).String() != "invalid" {
		t.Fatal("invalid enum String mismatch")
	}
}
