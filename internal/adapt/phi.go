package adapt

import "math"

// Phi1 is the long-term load factor φ1(t1,t2) = (t1−t2)/(t1+t2), defined as
// 0 when no observation has been classified yet. t1 counts over-load
// classifications, t2 under-load. The result lies in [-1,1]: +1 means the
// queue has only ever been over-loaded, −1 only ever under-loaded.
func Phi1(t1, t2 float64) float64 {
	if t1 < 0 || t2 < 0 {
		panic("adapt: Phi1 counters must be non-negative")
	}
	if t1+t2 == 0 {
		return 0
	}
	return (t1 - t2) / (t1 + t2)
}

// Phi2Exp is the windowed load factor φ2(w) = sign(w)·e^(|w|−W) where w is
// the net over-load count inside the last W observations (|w| ≤ W). The
// printed formula in the paper does not keep the stated [-1,1] range for
// w < 0; this variant does: it is ±1 when the whole window agrees and decays
// exponentially toward 0 as the window becomes mixed.
func Phi2Exp(w, window int) float64 {
	if window < 1 {
		panic("adapt: Phi2Exp window must be >= 1")
	}
	if w == 0 {
		return 0
	}
	mag := math.Exp(float64(iabs(w) - window))
	if w < 0 {
		return -mag
	}
	return mag
}

// Phi2Lin is the linear variant φ2(w) = w/W.
func Phi2Lin(w, window int) float64 {
	if window < 1 {
		panic("adapt: Phi2Lin window must be >= 1")
	}
	v := float64(w) / float64(window)
	return clamp(v, -1, 1)
}

// Phi3 is the recent-average load factor:
//
//	φ3(d̄) = (d̄−D)/D      if d̄ < D
//	φ3(d̄) = (d̄−D)/(C−D)  if d̄ ≥ D
//
// It is −1 for an empty queue, 0 at the expected length D, and +1 at
// capacity C.
func Phi3(dbar float64, expected, capacity int) float64 {
	if expected < 1 || capacity <= expected {
		panic("adapt: Phi3 requires 1 <= D < C")
	}
	d, c := float64(expected), float64(capacity)
	var v float64
	if dbar < d {
		v = (dbar - d) / d
	} else {
		v = (dbar - d) / (c - d)
	}
	return clamp(v, -1, 1)
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func iabs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
