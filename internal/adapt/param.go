package adapt

import (
	"fmt"
	"sync"
)

// Direction states how an adjustment parameter relates to processing speed,
// the last argument of the paper's specifyPara API. The middleware uses it
// to map the canonical ΔP (positive = process faster, lose accuracy) onto
// the parameter's own units.
type Direction int

const (
	// IncreaseSpeedsProcessing (+1): raising the value makes the stage
	// faster and less accurate (e.g. a skip factor).
	IncreaseSpeedsProcessing Direction = 1
	// IncreaseSlowsProcessing (−1): raising the value makes the stage
	// slower and more accurate (e.g. a sampling rate or summary size).
	IncreaseSlowsProcessing Direction = -1
)

// String returns the direction name.
func (d Direction) String() string {
	switch d {
	case IncreaseSpeedsProcessing:
		return "+speed"
	case IncreaseSlowsProcessing:
		return "-speed"
	default:
		return fmt.Sprintf("Direction(%d)", int(d))
	}
}

// ParamSpec describes one adjustment parameter, mirroring
// specifyPara(init_value, min_value, max_value, increment, direction).
type ParamSpec struct {
	// Name identifies the parameter in reports and traces.
	Name string
	// Initial is the starting value.
	Initial float64
	// Min and Max bound the acceptable range.
	Min, Max float64
	// Step is the adjustment granularity (the API's increment).
	Step float64
	// Direction states the value's relation to processing speed.
	Direction Direction
}

// Validate reports the first violated constraint, or nil.
func (s ParamSpec) Validate() error {
	switch {
	case s.Name == "":
		return fmt.Errorf("adapt: parameter needs a name")
	case s.Min >= s.Max:
		return fmt.Errorf("adapt: parameter %q: Min %v must be < Max %v", s.Name, s.Min, s.Max)
	case s.Initial < s.Min || s.Initial > s.Max:
		return fmt.Errorf("adapt: parameter %q: Initial %v outside [%v,%v]", s.Name, s.Initial, s.Min, s.Max)
	case s.Step <= 0:
		return fmt.Errorf("adapt: parameter %q: Step must be positive", s.Name)
	case s.Direction != IncreaseSpeedsProcessing && s.Direction != IncreaseSlowsProcessing:
		return fmt.Errorf("adapt: parameter %q: Direction must be ±1", s.Name)
	}
	return nil
}

// Param is a live adjustment parameter. The processing code reads the
// middleware's current suggestion with Value (the paper's
// getSuggestedValue()); only the adaptation controller writes it. Param is
// safe for concurrent use.
type Param struct {
	spec ParamSpec

	mu    sync.Mutex
	value float64
}

// NewParam returns a parameter initialized to its spec's Initial value.
func NewParam(spec ParamSpec) (*Param, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &Param{spec: spec, value: spec.Initial}, nil
}

// Spec returns the immutable specification.
func (p *Param) Spec() ParamSpec { return p.spec }

// Value returns the middleware's current suggested value — the paper's
// getSuggestedValue().
func (p *Param) Value() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.value
}

// Set forces the value (clamped to [Min,Max]). It exists for tests and for
// non-adaptive baseline versions of applications.
func (p *Param) Set(v float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.value = clamp(v, p.spec.Min, p.spec.Max)
}

// adjust moves the parameter by deltaCanonical (positive = speed up) scaled
// by the spec's Step and Direction, clamped to the legal range. It returns
// old and new values.
func (p *Param) adjust(deltaCanonical float64) (old, new float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	old = p.value
	p.value = clamp(p.value+float64(p.spec.Direction)*deltaCanonical*p.spec.Step, p.spec.Min, p.spec.Max)
	return old, p.value
}
