package adapt

// LoadClass classifies one queue observation.
type LoadClass int

const (
	// LoadNormal means the occupancy fell between the under/over
	// thresholds.
	LoadNormal LoadClass = iota
	// LoadOver means d exceeded OverFrac·C.
	LoadOver
	// LoadUnder means d fell below UnderFrac·C.
	LoadUnder
)

// String returns the class name.
func (c LoadClass) String() string {
	switch c {
	case LoadNormal:
		return "normal"
	case LoadOver:
		return "over"
	case LoadUnder:
		return "under"
	default:
		return "invalid"
	}
}

// Exception is the load report a server sends to its preceding server when
// d̃ leaves the [LT1, LT2] band.
type Exception int

const (
	// ExceptionNone reports nothing.
	ExceptionNone Exception = iota
	// ExceptionOverload means d̃ rose above LT2·C: the downstream server
	// is drowning and the sender should reduce what it forwards.
	ExceptionOverload
	// ExceptionUnderload means d̃ fell below LT1·C: the downstream server
	// is idle and the sender may forward more (more accurate) data.
	ExceptionUnderload
)

// String returns the exception name.
func (e Exception) String() string {
	switch e {
	case ExceptionNone:
		return "none"
	case ExceptionOverload:
		return "overload"
	case ExceptionUnderload:
		return "underload"
	default:
		return "invalid"
	}
}

// Observation is the outcome of feeding one queue-length sample to the
// Monitor.
type Observation struct {
	// D is the sampled queue length.
	D int
	// Class is how the sample was classified.
	Class LoadClass
	// DBar is the recent average queue length d̄ over the window.
	DBar float64
	// DTilde is the long-term average queue size factor d̃ ∈ [−C, C].
	DTilde float64
	// Phi1, Phi2, Phi3 are the three load factors that produced DTilde.
	Phi1, Phi2, Phi3 float64
	// Exception is the report due upstream, if any.
	Exception Exception
}

// Monitor maintains the queue-load state of Section 4.2 for one server:
// the lifetime over/under counters t1/t2, the W-observation window behind w
// and d̄, and the EWMA d̃. Monitor is not safe for concurrent use; the
// Controller serializes access.
type Monitor struct {
	opts Options

	t1, t2 float64 // lifetime (optionally decayed) over/under counts

	window []LoadClass // ring of the last W classifications
	dvals  []int       // ring of the last W queue lengths
	widx   int
	wn     int

	dTilde float64
	ticks  uint64
}

// NewMonitor returns a monitor with the given options. Options are filled
// with defaults and validated; invalid options panic, since a monitor with a
// broken constant set would silently destabilize the pipeline.
func NewMonitor(opts Options) *Monitor {
	opts.fill()
	if err := opts.Validate(); err != nil {
		panic(err)
	}
	return &Monitor{
		opts:   opts,
		window: make([]LoadClass, opts.Window),
		dvals:  make([]int, opts.Window),
	}
}

// Options returns the monitor's (filled) options.
func (m *Monitor) Options() Options { return m.opts }

// Ticks returns how many observations the monitor has consumed.
func (m *Monitor) Ticks() uint64 { return m.ticks }

// DTilde returns the current long-term average queue size factor.
func (m *Monitor) DTilde() float64 { return m.dTilde }

// Observe feeds one queue-length sample d and returns the full observation,
// including any exception the server owes its upstream neighbor.
func (m *Monitor) Observe(d int) Observation {
	if d < 0 {
		d = 0
	}
	if d > m.opts.Capacity {
		d = m.opts.Capacity
	}
	m.ticks++
	c := float64(m.opts.Capacity)

	// Classify the sample.
	class := LoadNormal
	switch {
	case float64(d) > m.opts.OverFrac*c:
		class = LoadOver
	case float64(d) < m.opts.UnderFrac*c:
		class = LoadUnder
	}

	// Update lifetime counters with optional aging.
	m.t1 *= m.opts.LongTermDecay
	m.t2 *= m.opts.LongTermDecay
	switch class {
	case LoadOver:
		m.t1++
	case LoadUnder:
		m.t2++
	}

	// Update the window ring.
	m.window[m.widx] = class
	m.dvals[m.widx] = d
	m.widx = (m.widx + 1) % m.opts.Window
	if m.wn < m.opts.Window {
		m.wn++
	}

	// w: net over-load count within the window; d̄: recent average.
	w := 0
	sum := 0
	for i := 0; i < m.wn; i++ {
		switch m.window[i] {
		case LoadOver:
			w++
		case LoadUnder:
			w--
		}
		sum += m.dvals[i]
	}
	dbar := float64(sum) / float64(m.wn)

	// Load factors.
	p1 := Phi1(m.t1, m.t2)
	var p2 float64
	switch m.opts.Phi2 {
	case Phi2Linear:
		p2 = Phi2Lin(w, m.opts.Window)
	default:
		p2 = Phi2Exp(w, m.opts.Window)
	}
	p3 := Phi3(dbar, m.opts.ExpectedLen, m.opts.Capacity)

	// d̃ EWMA (the paper's Equation 3).
	signal := (m.opts.P1*p1 + m.opts.P2*p2 + m.opts.P3*p3) * c
	m.dTilde = m.opts.Alpha*m.dTilde + (1-m.opts.Alpha)*signal
	m.dTilde = clamp(m.dTilde, -c, c)

	// Exception when d̃ leaves [LT1, LT2] (thresholds are fractions of C).
	exc := ExceptionNone
	switch {
	case m.dTilde > m.opts.HighThreshold*c:
		exc = ExceptionOverload
	case m.dTilde < m.opts.LowThreshold*c:
		exc = ExceptionUnderload
	}

	return Observation{
		D:         d,
		Class:     class,
		DBar:      dbar,
		DTilde:    m.dTilde,
		Phi1:      p1,
		Phi2:      p2,
		Phi3:      p3,
		Exception: exc,
	}
}
