package adapt

import (
	"math"
	"testing"
	"testing/quick"
)

func samplingRateSpec() ParamSpec {
	return ParamSpec{
		Name:      "sampling-rate",
		Initial:   0.13,
		Min:       0.01,
		Max:       1.0,
		Step:      0.01,
		Direction: IncreaseSlowsProcessing,
	}
}

func TestParamSpecValidate(t *testing.T) {
	good := samplingRateSpec()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*ParamSpec){
		func(s *ParamSpec) { s.Name = "" },
		func(s *ParamSpec) { s.Min, s.Max = 1, 1 },
		func(s *ParamSpec) { s.Initial = 2 },
		func(s *ParamSpec) { s.Step = 0 },
		func(s *ParamSpec) { s.Direction = 0 },
	}
	for i, mutate := range bad {
		s := samplingRateSpec()
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: invalid spec accepted", i)
		}
	}
}

func TestParamValueAndSetClamped(t *testing.T) {
	p, err := NewParam(samplingRateSpec())
	if err != nil {
		t.Fatal(err)
	}
	if p.Value() != 0.13 {
		t.Fatalf("initial Value = %v, want 0.13", p.Value())
	}
	p.Set(5)
	if p.Value() != 1.0 {
		t.Fatalf("Set(5) clamped to %v, want 1.0", p.Value())
	}
	p.Set(-1)
	if p.Value() != 0.01 {
		t.Fatalf("Set(-1) clamped to %v, want 0.01", p.Value())
	}
}

func TestParamAdjustDirections(t *testing.T) {
	slow, _ := NewParam(samplingRateSpec()) // increase slows processing
	fast, _ := NewParam(ParamSpec{
		Name: "skip", Initial: 5, Min: 0, Max: 10, Step: 1,
		Direction: IncreaseSpeedsProcessing,
	})
	// Canonical +1 = "speed up": sampling rate must fall, skip must rise.
	if _, v := slow.adjust(1); v >= 0.13 {
		t.Fatalf("slows-processing param rose to %v on speed-up", v)
	}
	if _, v := fast.adjust(1); v <= 5 {
		t.Fatalf("speeds-processing param fell to %v on speed-up", v)
	}
}

func TestControllerRegisterDuplicate(t *testing.T) {
	c := NewController(Defaults(100))
	if _, err := c.Register(samplingRateSpec()); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Register(samplingRateSpec()); err == nil {
		t.Fatal("duplicate Register accepted")
	}
	if p, ok := c.Param("sampling-rate"); !ok || p == nil {
		t.Fatal("registered parameter not retrievable")
	}
	if len(c.Params()) != 1 {
		t.Fatalf("Params() length = %d, want 1", len(c.Params()))
	}
}

func TestControllerOverloadReducesSamplingRate(t *testing.T) {
	c := NewController(Defaults(100))
	p, _ := c.Register(samplingRateSpec())
	for i := 0; i < 40; i++ {
		c.Observe(95)
		if i%4 == 3 {
			c.Adjust()
		}
	}
	if p.Value() >= 0.13 {
		t.Fatalf("sampling rate %v did not fall under sustained overload", p.Value())
	}
}

func TestControllerUnderloadRaisesSamplingRate(t *testing.T) {
	c := NewController(Defaults(100))
	p, _ := c.Register(samplingRateSpec())
	for i := 0; i < 40; i++ {
		c.Observe(0)
		if i%4 == 3 {
			c.Adjust()
		}
	}
	if p.Value() <= 0.13 {
		t.Fatalf("sampling rate %v did not rise under sustained underload", p.Value())
	}
}

func TestControllerDownstreamExceptionsReinforcing(t *testing.T) {
	o := Defaults(100)
	o.DownstreamSign = SignReinforcing
	c := NewController(o)
	p, _ := c.Register(samplingRateSpec())
	// Own queue neutral, downstream screaming overload.
	for i := 0; i < 10; i++ {
		c.Observe(25)
		c.OnDownstreamException(ExceptionOverload)
		c.Adjust()
	}
	if p.Value() >= 0.13 {
		t.Fatalf("reinforcing sign: downstream overload left rate at %v, want lower", p.Value())
	}
}

func TestControllerDownstreamExceptionsLiteral(t *testing.T) {
	o := Defaults(100)
	o.DownstreamSign = SignLiteral
	c := NewController(o)
	p, _ := c.Register(samplingRateSpec())
	for i := 0; i < 10; i++ {
		c.Observe(25)
		c.OnDownstreamException(ExceptionOverload)
		c.Adjust()
	}
	if p.Value() <= 0.13 {
		t.Fatalf("literal sign: downstream overload left rate at %v, want higher (the printed equation)", p.Value())
	}
}

func TestControllerEpochCountsReset(t *testing.T) {
	c := NewController(Defaults(100))
	c.OnDownstreamException(ExceptionOverload)
	c.OnDownstreamException(ExceptionUnderload)
	if t1, t2 := c.DownstreamEpochCounts(); t1 != 1 || t2 != 1 {
		t.Fatalf("epoch counts = (%v,%v), want (1,1)", t1, t2)
	}
	c.Adjust()
	if t1, t2 := c.DownstreamEpochCounts(); t1 != 0 || t2 != 0 {
		t.Fatalf("epoch counts after Adjust = (%v,%v), want (0,0)", t1, t2)
	}
	if c.Adjustments() != 1 {
		t.Fatalf("Adjustments = %d, want 1", c.Adjustments())
	}
}

func TestControllerAdjustReportsDeltas(t *testing.T) {
	c := NewController(Defaults(100))
	c.Register(samplingRateSpec())
	for i := 0; i < 20; i++ {
		c.Observe(95)
	}
	adjs := c.Adjust()
	if len(adjs) != 1 {
		t.Fatalf("Adjust returned %d adjustments, want 1", len(adjs))
	}
	a := adjs[0]
	if a.Param != "sampling-rate" || a.DeltaP <= 0 || a.New >= a.Old {
		t.Fatalf("adjustment %+v inconsistent with overload", a)
	}
}

// TestClosedLoopConvergence drives the controller against an analytic queue
// model: packets arrive at rate gen·r(t) and are served at rate mu. The
// sampling rate must converge near the sustainable ratio mu/gen — the
// mechanism behind Figures 8 and 9.
func TestClosedLoopConvergence(t *testing.T) {
	cases := []struct {
		name    string
		gen, mu float64 // packets per tick
		wantR   float64 // expected equilibrium min(1, mu/gen)
	}{
		{"no-constraint", 4, 12, 1.0},
		{"half", 8, 4, 0.5},
		{"quarter", 16, 4, 0.25},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := NewController(Defaults(200))
			p, _ := c.Register(ParamSpec{
				Name: "r", Initial: 0.05, Min: 0.01, Max: 1, Step: 0.01,
				Direction: IncreaseSlowsProcessing,
			})
			queue := 0.0
			var rs []float64
			for tick := 0; tick < 4000; tick++ {
				r := p.Value()
				queue += tc.gen * r // arrivals this tick
				queue -= tc.mu      // service this tick
				if queue < 0 {
					queue = 0
				}
				if queue > 200 {
					queue = 200
				}
				c.Observe(int(queue))
				if tick%5 == 4 {
					c.Adjust()
				}
				if tick >= 3000 {
					rs = append(rs, p.Value())
				}
			}
			mean := 0.0
			for _, r := range rs {
				mean += r
			}
			mean /= float64(len(rs))
			if math.Abs(mean-tc.wantR) > 0.2*tc.wantR+0.05 {
				t.Fatalf("converged to %.3f, want ≈ %.3f", mean, tc.wantR)
			}
		})
	}
}

func TestEnumStrings(t *testing.T) {
	if Phi2Exponential.String() != "exponential" || Phi2Linear.String() != "linear" {
		t.Fatal("Phi2Kind.String mismatch")
	}
	if SignReinforcing.String() != "reinforcing" || SignLiteral.String() != "literal" {
		t.Fatal("SignConvention.String mismatch")
	}
	if IncreaseSpeedsProcessing.String() != "+speed" || IncreaseSlowsProcessing.String() != "-speed" {
		t.Fatal("Direction.String mismatch")
	}
	if Phi2Kind(9).String() == "" || SignConvention(9).String() == "" || Direction(9).String() == "" {
		t.Fatal("invalid enums must still format")
	}
}

// Property: under any interleaving of observations, downstream exceptions,
// and adjustments, every parameter stays within its declared bounds and d̃
// stays within [-C, C].
func TestControllerBoundsProperty(t *testing.T) {
	f := func(script []uint8) bool {
		c := NewController(Defaults(64))
		p, err := c.Register(ParamSpec{
			Name: "r", Initial: 0.5, Min: 0.1, Max: 0.9, Step: 0.05,
			Direction: IncreaseSlowsProcessing,
		})
		if err != nil {
			return false
		}
		for _, op := range script {
			switch op % 4 {
			case 0:
				c.Observe(int(op) % 70) // may exceed capacity; must clamp
			case 1:
				c.OnDownstreamException(ExceptionOverload)
			case 2:
				c.OnDownstreamException(ExceptionUnderload)
			case 3:
				c.Adjust()
			}
			v := p.Value()
			if v < 0.1 || v > 0.9 {
				return false
			}
			if d := c.DTilde(); d < -64 || d > 64 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
