package obs

import (
	"bytes"
	"compress/gzip"
	"context"
	"runtime/pprof"
	"testing"
	"time"

	"github.com/gates-middleware/gates/internal/clock"
)

// --- minimal profile.proto encoder for deterministic fold tests ---

func pvarint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

func ptag(b []byte, field, wire int) []byte {
	return pvarint(b, uint64(field)<<3|uint64(wire))
}

func pbytes(b []byte, field int, payload []byte) []byte {
	b = ptag(b, field, 2)
	b = pvarint(b, uint64(len(payload)))
	return append(b, payload...)
}

func pint(b []byte, field int, v uint64) []byte {
	b = ptag(b, field, 0)
	return pvarint(b, v)
}

// testProfile encodes a CPU profile with the canonical two sample types
// [("samples","count"), ("cpu","nanoseconds")] and the given samples, each
// a (stageStringIndex, cpuNanos) pair; stage index 0 means unlabeled.
func testProfile(t *testing.T, samples [][2]uint64, gzipped bool) []byte {
	t.Helper()
	// String table: index 0 must be "".
	strs := []string{"", "samples", "count", "cpu", "nanoseconds", "stage", "worker", "other"}
	var p []byte
	// sample_type: {type, unit} pairs.
	var st []byte
	st = pint(nil, 1, 1) // "samples"
	st = pint(st, 2, 2)  // "count"
	p = pbytes(p, 1, st)
	st = pint(nil, 1, 3) // "cpu"
	st = pint(st, 2, 4)  // "nanoseconds"
	p = pbytes(p, 1, st)
	for _, s := range samples {
		// Sample: packed values [count, cpuNanos] + optional stage label.
		var vals []byte
		vals = pvarint(vals, 1)
		vals = pvarint(vals, s[1])
		sm := pbytes(nil, 2, vals)
		if s[0] != 0 {
			lbl := pint(nil, 1, 5) // key = "stage"
			lbl = pint(lbl, 2, s[0])
			sm = pbytes(sm, 3, lbl)
		}
		p = pbytes(p, 2, sm)
	}
	// String table last, as runtime/pprof emits it.
	for _, s := range strs {
		p = pbytes(p, 6, []byte(s))
	}
	if !gzipped {
		return p
	}
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(p); err != nil {
		t.Fatalf("gzip: %v", err)
	}
	if err := zw.Close(); err != nil {
		t.Fatalf("gzip close: %v", err)
	}
	return buf.Bytes()
}

func TestFoldCPUProfileHandEncoded(t *testing.T) {
	for _, gz := range []bool{false, true} {
		data := testProfile(t, [][2]uint64{
			{6, 1_500_000}, // worker: 1.5ms
			{6, 500_000},   // worker again: +0.5ms
			{7, 250_000},   // other: 0.25ms
			{0, 100_000},   // unlabeled
		}, gz)
		byStage, err := foldCPUProfile(data)
		if err != nil {
			t.Fatalf("fold (gzip=%v): %v", gz, err)
		}
		if byStage["worker"] != 2_000_000 {
			t.Errorf("worker = %d ns, want 2000000 (gzip=%v)", byStage["worker"], gz)
		}
		if byStage["other"] != 250_000 {
			t.Errorf("other = %d ns, want 250000 (gzip=%v)", byStage["other"], gz)
		}
		if byStage[""] != 100_000 {
			t.Errorf("unlabeled = %d ns, want 100000 (gzip=%v)", byStage[""], gz)
		}
	}
}

func TestFoldCPUProfileTruncated(t *testing.T) {
	data := testProfile(t, [][2]uint64{{6, 1000}}, false)
	if _, err := foldCPUProfile(data[:len(data)-3]); err == nil {
		t.Error("truncated profile must error, not fold garbage")
	}
}

func TestProfilerFoldAccumulatesAndRegisters(t *testing.T) {
	clk := clock.NewManual()
	reg := NewRegistry(clk)
	p := NewProfiler(time.Second)
	p.SetRegistry(reg)

	p.fold(map[string]int64{"worker": 500_000_000, "": 100_000_000}, 0.5)
	p.fold(map[string]int64{"worker": 250_000_000}, 0.5)

	cum := p.CPUSeconds()
	if got := cum["worker"]; got < 0.749 || got > 0.751 {
		t.Errorf("worker cumulative = %g s, want 0.75", got)
	}
	if got := cum[""]; got < 0.099 || got > 0.101 {
		t.Errorf("unlabeled cumulative = %g s, want 0.1", got)
	}
	// The per-stage counter registers lazily and tracks the cumulative.
	v, ok := reg.Value("gates_stage_cpu_seconds_total", map[string]string{"stage": "worker"})
	if !ok || v < 0.749 || v > 0.751 {
		t.Errorf("gates_stage_cpu_seconds_total{stage=worker} = %g, %v; want 0.75", v, ok)
	}
	// No "" series: the metric answers per-stage attribution only.
	if _, ok := reg.Value("gates_stage_cpu_seconds_total", map[string]string{"stage": ""}); ok {
		t.Error("unlabeled CPU must not register a metric series")
	}
	// EWMA rate: round 1 burned 1 core (0.5s over 0.5s), round 2 0.5 cores;
	// with alpha 0.5 the blend is 0.5*1*(1-0.5)... just assert it is
	// positive and at most a plausible core count.
	rates := p.CPURates()
	if r := rates["worker"]; r <= 0 || r > 2 {
		t.Errorf("worker rate = %g, want in (0, 2]", r)
	}
	if rounds, _ := p.Rounds(); rounds != 2 {
		t.Errorf("rounds = %d, want 2", rounds)
	}
}

// TestProfilerLiveAttribution takes one real profile round while a labeled
// goroutine burns CPU. Profile signal depends on OS timer delivery under
// load, so absence of samples skips rather than fails; presence must fold
// to the right stage.
func TestProfilerLiveAttribution(t *testing.T) {
	if testing.Short() {
		t.Skip("live CPU profiling round")
	}
	stop := make(chan struct{})
	defer close(stop)
	go pprof.Do(context.Background(), pprof.Labels("stage", "burner"), func(context.Context) {
		x := 0
		for {
			select {
			case <-stop:
				return
			default:
				x++
			}
		}
	})

	p := NewProfiler(400 * time.Millisecond)
	if err := p.SampleOnce(); err != nil {
		t.Skipf("profile round unavailable: %v", err)
	}
	cum := p.CPUSeconds()
	if cum["burner"] > 0 {
		return
	}
	total := 0.0
	for _, v := range cum {
		total += v
	}
	if total == 0 {
		t.Skip("no CPU samples captured at all (loaded box)")
	}
	t.Errorf("CPU captured (%.3fs total) but none attributed to the labeled burner: %v", total, cum)
}
