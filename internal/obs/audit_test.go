package obs

import "testing"

func TestAuditTrailSeqAndOrder(t *testing.T) {
	a := NewAuditTrail(3)
	for i := 0; i < 5; i++ {
		a.Record(AdaptationEvent{Stage: "s", QueueLen: i})
	}
	if a.Total() != 5 {
		t.Fatalf("total = %d", a.Total())
	}
	evs := a.Events()
	if len(evs) != 3 {
		t.Fatalf("retained %d", len(evs))
	}
	// Oldest first, with monotone Seq stamped at record time.
	for i, ev := range evs {
		if ev.Seq != uint64(i+2) || ev.QueueLen != i+2 {
			t.Fatalf("event %d = %+v", i, ev)
		}
	}
	last, ok := a.Last()
	if !ok || last.Seq != 4 {
		t.Fatalf("last = %+v, %v", last, ok)
	}
}

func TestAuditTrailForStage(t *testing.T) {
	a := NewAuditTrail(8)
	a.Record(AdaptationEvent{Stage: "analyze", Instance: 0, DeltaP: 1})
	a.Record(AdaptationEvent{Stage: "reduce", Instance: 0, DeltaP: 2})
	a.Record(AdaptationEvent{Stage: "analyze", Instance: 1, DeltaP: 3})
	a.Record(AdaptationEvent{Stage: "analyze", Instance: 0, DeltaP: 4})
	got := a.ForStage("analyze", 0)
	if len(got) != 2 || got[0].DeltaP != 1 || got[1].DeltaP != 4 {
		t.Fatalf("ForStage = %+v", got)
	}
}

func TestNilAuditTrailIsInert(t *testing.T) {
	var a *AuditTrail
	a.Record(AdaptationEvent{})
	if a.Total() != 0 {
		t.Fatal("nil trail counted")
	}
	if a.Events() != nil {
		t.Fatal("nil trail has events")
	}
	if _, ok := a.Last(); ok {
		t.Fatal("nil trail has a last event")
	}
	if a.ForStage("x", 0) != nil {
		t.Fatal("nil trail matched a stage")
	}
}

func TestEmptyTrailLast(t *testing.T) {
	a := NewAuditTrail(4)
	if _, ok := a.Last(); ok {
		t.Fatal("empty trail reported a last event")
	}
}
