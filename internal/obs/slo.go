package obs

import (
	"fmt"
	"sync"
	"time"
)

// Metric names shared between the publishing side (internal/pipeline) and
// the consuming side (the SLO detector and cluster aggregator). They live
// here because obs is the layer both sides already import.
const (
	// MetricE2ELatency is the source-to-here latency histogram every
	// stage records per consumed packet, in virtual seconds since the
	// packet's lineage was born at a source stage.
	MetricE2ELatency = "gates_stage_e2e_latency_seconds"
	// MetricHopLatency is the per-stage latency histogram: virtual time
	// from a packet's emission upstream to its consumption here (queue
	// wait plus link transfer).
	MetricHopLatency = "gates_stage_hop_latency_seconds"
	// MetricFanout is the number of downstream edges of a stage
	// instance; 0 identifies a sink, where e2e latency is the paper's
	// real-time constraint.
	MetricFanout = "gates_stage_fanout"
	// MetricDTilde is the adaptation controller's smoothed queue-growth
	// rate; positive across consecutive epochs means the stage is
	// falling behind its arrival rate.
	MetricDTilde = "gates_d_tilde"
)

// DefaultSLOGrowthEpochs is how many consecutive evaluations a stage's
// d-tilde must stay positive before the detector flags queue growth.
const DefaultSLOGrowthEpochs = 3

// DefaultSLOCapacity is the default retained SLO-transition ring size.
const DefaultSLOCapacity = 128

// SLOConfig tunes the violation detector.
//
// Deprecated shim: SLOConfig survives as the static way to hand the
// detector its objectives; policy-driven deployments compile their policy
// document into one of these per evaluation via SetSource, so the numbers
// live in the (hot-reloadable) policy layer rather than here.
type SLOConfig struct {
	// TargetP99 is the sink-side end-to-end p99 latency objective in
	// virtual seconds; <= 0 disables the latency check.
	TargetP99 float64
	// GrowthEpochs is how many consecutive evaluations with d-tilde > 0
	// constitute "falling behind" (<= 0 selects
	// DefaultSLOGrowthEpochs).
	GrowthEpochs int
}

// SLOSource supplies the detector's current objectives plus the policy
// version they came from, consulted at every evaluation so a policy hot
// reload changes the very next verdict. The obs layer stays policy-agnostic:
// the policy engine provides this closure.
type SLOSource func() (SLOConfig, string)

// SLOStatus is the detector's verdict after one evaluation.
type SLOStatus struct {
	// Evaluated reports whether at least one evaluation has run.
	Evaluated bool `json:"evaluated"`
	// Violated is the flag: the pipeline is not meeting its real-time
	// constraint.
	Violated bool `json:"violated"`
	// Reasons lists the active violation causes, empty when healthy.
	Reasons []string `json:"reasons,omitempty"`
	// SinkP99 is the merged sink-side end-to-end p99 in virtual
	// seconds (0 until a sink has observations).
	SinkP99 JSONFloat `json:"sink_p99"`
	// TargetP99 echoes the configured objective (0 = latency check
	// disabled).
	TargetP99 JSONFloat `json:"target_p99,omitempty"`
	// MaxDTilde is the largest queue-growth rate seen this evaluation.
	MaxDTilde JSONFloat `json:"max_d_tilde"`
	// Since is the virtual time the current violation (or recovery)
	// began.
	Since time.Time `json:"since"`
}

// SLOEvent records one flag transition (healthy ↔ violated).
type SLOEvent struct {
	// Seq numbers events in record order across the whole trail.
	Seq uint64 `json:"seq"`
	// At is the virtual time of the transition.
	At time.Time `json:"at"`
	// Violated is the new flag state.
	Violated bool `json:"violated"`
	// Reasons are the causes at transition time (empty on recovery).
	Reasons []string `json:"reasons,omitempty"`
	// SinkP99 and MaxDTilde snapshot the evidence.
	SinkP99   JSONFloat `json:"sink_p99"`
	MaxDTilde JSONFloat `json:"max_d_tilde"`
}

// SLOMonitor turns the paper's §4 real-time constraint — "the processing
// can keep up with the arrival rate" — into a measurable objective. Each
// Evaluate inspects one metric snapshot (node-local or cluster-merged) and
// trips the violation flag when either signal says the pipeline is falling
// behind:
//
//   - the merged sink-side end-to-end p99 exceeds TargetP99, or
//   - some stage's d-tilde stays positive for GrowthEpochs consecutive
//     evaluations (queues growing without bound).
//
// Transitions are recorded in a bounded trail so operators can see when
// the pipeline fell behind and when the adaptation controller recovered
// it. Safe for concurrent use: Evaluate serializes against itself and
// against Status, so a scrape (Status from an HTTP handler or gauge
// callback) can race an aggregator collect without tearing the status.
type SLOMonitor struct {
	cfg   SLOConfig
	trail *ring[SLOEvent]

	mu     sync.Mutex
	src    SLOSource      // nil = static cfg
	dec    *DecisionTrail // nil = verdicts not decision-logged
	growth map[string]int // series key → consecutive positive epochs
	cur    SLOStatus
}

// NewSLOMonitor returns a detector with the given objectives, retaining up
// to capacity flag transitions (<=0 selects DefaultSLOCapacity).
func NewSLOMonitor(cfg SLOConfig, capacity int) *SLOMonitor {
	if cfg.GrowthEpochs <= 0 {
		cfg.GrowthEpochs = DefaultSLOGrowthEpochs
	}
	return &SLOMonitor{
		cfg:    cfg,
		trail:  newRing(capacity, DefaultSLOCapacity, func(ev *SLOEvent, n uint64) { ev.Seq = n }),
		growth: make(map[string]int),
	}
}

// SetSource installs the dynamic objective source the detector consults at
// every evaluation (a policy engine's SLO view). Nil reverts to the static
// SLOConfig the monitor was built with.
func (m *SLOMonitor) SetSource(src SLOSource) {
	m.mu.Lock()
	m.src = src
	m.mu.Unlock()
}

// SetDecisionLog makes every evaluation record its verdict — with the full
// input context and the policy version that produced the objectives — into
// the given decision log. Nil stops the recording.
func (m *SLOMonitor) SetDecisionLog(t *DecisionTrail) {
	m.mu.Lock()
	m.dec = t
	m.mu.Unlock()
}

// Evaluate runs one detection epoch over a metric snapshot and returns the
// updated status. now is the snapshot's virtual timestamp.
func (m *SLOMonitor) Evaluate(now time.Time, points []MetricPoint) SLOStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	cfg, version := m.cfg, ""
	if m.src != nil {
		cfg, version = m.src()
		if cfg.GrowthEpochs <= 0 {
			cfg.GrowthEpochs = DefaultSLOGrowthEpochs
		}
	}
	sinkP99 := SinkP99(points)

	var reasons []string
	rule := "within-objectives"
	if cfg.TargetP99 > 0 && sinkP99 > cfg.TargetP99 {
		reasons = append(reasons, fmt.Sprintf("sink p99 %.3gs exceeds target %.3gs", sinkP99, cfg.TargetP99))
		rule = "sink-p99"
	}

	maxDTilde, growing := m.trackGrowth(points, cfg.GrowthEpochs)
	if len(growing) > 0 {
		reasons = append(reasons, fmt.Sprintf("queue growth: d-tilde > 0 for %d+ epochs at %v", cfg.GrowthEpochs, growing))
		rule = "queue-growth"
		if len(reasons) > 1 {
			rule = "sink-p99+queue-growth"
		}
	}

	violated := len(reasons) > 0
	prev := m.cur
	m.cur = SLOStatus{
		Evaluated: true,
		Violated:  violated,
		Reasons:   reasons,
		SinkP99:   JSONFloat(sinkP99),
		TargetP99: JSONFloat(cfg.TargetP99),
		MaxDTilde: JSONFloat(maxDTilde),
		Since:     prev.Since,
	}
	if !prev.Evaluated || prev.Violated != violated {
		m.cur.Since = now
		m.trail.record(SLOEvent{
			At:        now,
			Violated:  violated,
			Reasons:   reasons,
			SinkP99:   JSONFloat(sinkP99),
			MaxDTilde: JSONFloat(maxDTilde),
		})
	}
	if m.dec != nil {
		outcome := "ok"
		if violated {
			outcome = "violated"
		}
		m.dec.Record(DecisionEvent{
			At:            now,
			Kind:          DecisionSLO,
			PolicyVersion: version,
			Rule:          rule,
			Outcome:       outcome,
			Input: map[string]any{
				"sink_p99":      sinkP99,
				"target_p99":    cfg.TargetP99,
				"max_d_tilde":   maxDTilde,
				"growth_epochs": cfg.GrowthEpochs,
				"growing":       growing,
			},
		})
	}
	return m.cur
}

// trackGrowth updates the per-stage consecutive-positive-epoch counters
// and returns the max d-tilde plus the stages currently past the
// threshold. epochs is the currently effective GrowthEpochs objective
// (policy-resolved, so a hot reload tightens or loosens it mid-run).
func (m *SLOMonitor) trackGrowth(points []MetricPoint, epochs int) (maxDTilde float64, growing []string) {
	seen := make(map[string]bool)
	for _, p := range points {
		if p.Name != MetricDTilde {
			continue
		}
		key := p.Labels["stage"] + "/" + p.Labels["instance"] + "/" + p.Labels["node"]
		seen[key] = true
		v := float64(p.Value)
		if v > maxDTilde {
			maxDTilde = v
		}
		if v > 0 {
			m.growth[key]++
			if m.growth[key] >= epochs {
				growing = append(growing, p.Labels["stage"])
			}
		} else {
			m.growth[key] = 0
		}
	}
	// Series that vanished (stage stopped or migrated away) stop counting.
	for key := range m.growth {
		if !seen[key] {
			delete(m.growth, key)
		}
	}
	return maxDTilde, growing
}

// Status returns the result of the last evaluation.
func (m *SLOMonitor) Status() SLOStatus {
	if m == nil {
		return SLOStatus{}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cur
}

// Events returns the retained flag transitions, oldest first.
func (m *SLOMonitor) Events() []SLOEvent {
	if m == nil {
		return nil
	}
	return m.trail.events()
}

// SinkStages returns the set of stage names whose fanout gauge reads 0 —
// the pipeline's sinks, where end-to-end latency is judged.
func SinkStages(points []MetricPoint) map[string]bool {
	sinks := make(map[string]bool)
	for _, p := range points {
		if p.Name != MetricFanout {
			continue
		}
		stage := p.Labels["stage"]
		if float64(p.Value) == 0 {
			if _, clash := sinks[stage]; !clash {
				sinks[stage] = true
			}
		} else {
			sinks[stage] = false
		}
	}
	for s, isSink := range sinks {
		if !isSink {
			delete(sinks, s)
		}
	}
	return sinks
}

// SinkP99 merges the end-to-end latency histograms of every sink stage in
// the snapshot and returns their combined p99 (0 when no sink has
// observations). Histograms with misaligned buckets are skipped rather
// than merged wrongly.
func SinkP99(points []MetricPoint) float64 {
	sinks := SinkStages(points)
	var merged []BucketCount
	var count uint64
	for _, p := range points {
		if p.Name != MetricE2ELatency || !sinks[p.Labels["stage"]] || len(p.Buckets) == 0 {
			continue
		}
		if merged == nil {
			merged = append([]BucketCount(nil), p.Buckets...)
			count = uint64(p.Value)
			continue
		}
		if mergeBuckets(merged, p.Buckets) {
			count += uint64(p.Value)
		}
	}
	return QuantileFromBuckets(merged, count, 0.99)
}
