package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/gates-middleware/gates/internal/clock"
)

// NodeSnapshot is the JSON document one node's /snapshot endpoint serves:
// every metric series plus the adaptation, migration, and lifecycle trails,
// so the cluster aggregator sees the node's full story in a single scrape.
type NodeSnapshot struct {
	// Node is the aggregator-assigned source name; empty in a node's
	// own /snapshot output.
	Node string `json:"node,omitempty"`
	// At is the node's virtual time when the snapshot was taken.
	At time.Time `json:"at"`
	// Metrics is every series, histograms carried as buckets.
	Metrics []MetricPoint `json:"metrics"`
	// Adaptations, Migrations, Lifecycle, Decisions are the node's
	// retained event trails.
	Adaptations []AdaptationEvent `json:"adaptations,omitempty"`
	Migrations  []MigrationEvent  `json:"migrations,omitempty"`
	Lifecycle   []LifecycleEvent  `json:"lifecycle,omitempty"`
	Decisions   []DecisionEvent   `json:"decisions,omitempty"`
	// Timeseries is a bounded tail of the node's windowed series plus
	// its trend summary, so the cluster aggregator can merge trend
	// signals node-labeled without a second scrape.
	Timeseries *TSDump `json:"timeseries,omitempty"`
}

// NodeSnapshot assembles the bundle's current snapshot document.
func (o *Observability) NodeSnapshot() NodeSnapshot {
	s := NodeSnapshot{At: o.Clock.Now()}
	if o.Registry != nil {
		s.Metrics = o.Registry.Snapshot()
	}
	s.Adaptations = o.Audit.Events()
	s.Migrations = o.Migrations.Events()
	s.Lifecycle = o.Lifecycle.Events()
	s.Decisions = o.Decisions.Events()
	if o.Sampler != nil && o.Sampler.Epochs() > 0 {
		dump := o.Sampler.Dump(time.Duration(snapshotEpochs)*o.Timeseries.Epoch(), "")
		s.Timeseries = &dump
	}
	return s
}

// SnapshotFunc fetches one node's snapshot; the aggregator calls it every
// collection round.
type SnapshotFunc func() (NodeSnapshot, error)

// LocalSource snapshots an in-process bundle — the launcher's own registry,
// which in simulated deployments already carries every node's series
// (distinguished by the "node" label).
func LocalSource(o *Observability) SnapshotFunc {
	return func() (NodeSnapshot, error) {
		if o == nil {
			return NodeSnapshot{}, fmt.Errorf("obs: nil bundle")
		}
		return o.NodeSnapshot(), nil
	}
}

// HTTPSource scrapes a remote node's /snapshot endpoint. base is the
// node's observability address ("host:port" or "http://host:port").
func HTTPSource(client *http.Client, base string) SnapshotFunc {
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Second}
	}
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	url := strings.TrimRight(base, "/") + "/snapshot"
	return func() (NodeSnapshot, error) {
		resp, err := client.Get(url)
		if err != nil {
			return NodeSnapshot{}, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return NodeSnapshot{}, fmt.Errorf("obs: scrape %s: %s", url, resp.Status)
		}
		var s NodeSnapshot
		if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
			return NodeSnapshot{}, fmt.Errorf("obs: scrape %s: %w", url, err)
		}
		return s, nil
	}
}

// MergeMetrics folds the series of several node snapshots into one
// pipeline-wide list: series are grouped by name plus labels with "node"
// dropped, counters and gauges sum, histogram buckets add bucket-by-bucket
// (their bounds must align — all histograms in this codebase share either
// DefBuckets or LatencyBuckets per family). Misaligned histograms are
// reported rather than silently merged into a wrong distribution.
func MergeMetrics(snaps []NodeSnapshot) ([]MetricPoint, error) {
	type group struct {
		point MetricPoint
		count uint64
	}
	merged := make(map[string]*group)
	var order []string
	var mergeErr error
	for _, snap := range snaps {
		for _, p := range snap.Metrics {
			// Pool stats are per-process resources, not per-stage work:
			// summing them across nodes would hide which node's pool is
			// exhausted, so their node label survives the merge (injected
			// from the source name when the series has none).
			keepNode := strings.HasPrefix(p.Name, "gates_pool_")
			labels := make(map[string]string, len(p.Labels)+1)
			for k, v := range p.Labels {
				if k == "node" && !keepNode {
					continue
				}
				labels[k] = v
			}
			if keepNode && labels["node"] == "" && snap.Node != "" {
				labels["node"] = snap.Node
			}
			key, _ := canonical(labels)
			key = p.Name + "{" + key + "}"
			g, ok := merged[key]
			if !ok {
				cp := p
				cp.Labels = labels
				if len(labels) == 0 {
					cp.Labels = nil
				}
				cp.Buckets = append([]BucketCount(nil), p.Buckets...)
				merged[key] = &group{point: cp, count: uint64(p.Value)}
				order = append(order, key)
				continue
			}
			switch p.Kind {
			case "histogram":
				if !mergeBuckets(g.point.Buckets, p.Buckets) {
					if mergeErr == nil {
						mergeErr = fmt.Errorf("obs: histogram %s: bucket bounds differ across nodes", p.Name)
					}
					continue
				}
				g.count += uint64(p.Value)
				g.point.Value = JSONFloat(float64(g.count))
				g.point.Sum += p.Sum
			default:
				g.point.Value += p.Value
			}
		}
	}
	sort.Strings(order)
	out := make([]MetricPoint, 0, len(order))
	for _, key := range order {
		g := merged[key]
		if g.point.Kind == "histogram" {
			g.point.Quantiles = pointQuantiles(g.point.Buckets, g.count)
		}
		out = append(out, g.point)
	}
	return out, mergeErr
}

// NodeStatus reports one source's health in a cluster view.
type NodeStatus struct {
	Name string    `json:"name"`
	OK   bool      `json:"ok"`
	Err  string    `json:"err,omitempty"`
	At   time.Time `json:"at"`
}

// StagePlacement is one stage instance's location, read off the metric
// labels.
type StagePlacement struct {
	Stage    string `json:"stage"`
	Instance string `json:"instance"`
	Node     string `json:"node,omitempty"`
	// Depth is the instance's current input-queue depth.
	Depth float64 `json:"depth"`
}

// LatencySummary is the merged latency distribution of one stage.
type LatencySummary struct {
	Stage string    `json:"stage"`
	Count uint64    `json:"count"`
	P50   JSONFloat `json:"p50"`
	P95   JSONFloat `json:"p95"`
	P99   JSONFloat `json:"p99"`
	// Sink marks the stage as a pipeline sink (fanout 0), where the
	// end-to-end objective is judged.
	Sink bool `json:"sink,omitempty"`
}

// ClusterView is the merged, pipeline-wide picture served at /cluster.
type ClusterView struct {
	// At is the aggregator's virtual collection time.
	At time.Time `json:"at"`
	// Nodes lists every configured source and whether its last scrape
	// succeeded.
	Nodes []NodeStatus `json:"nodes"`
	// Metrics is the merged series (the "node" label dropped, values
	// summed, histograms bucket-merged).
	Metrics []MetricPoint `json:"metrics"`
	// Placements maps stage instances to grid nodes with their queue
	// depths.
	Placements []StagePlacement `json:"placements,omitempty"`
	// Latency summarizes each stage's source-to-here distribution.
	Latency []LatencySummary `json:"latency,omitempty"`
	// SLO is the violation detector's verdict for this collection.
	SLO SLOStatus `json:"slo"`
	// SLOEvents are the retained flag transitions.
	SLOEvents []SLOEvent `json:"slo_events,omitempty"`
	// Bottlenecks is the cluster-wide backpressure attribution verdict
	// for this collection epoch, ranked over the merged series.
	Bottlenecks *AttributionReport `json:"bottlenecks,omitempty"`
	// Adaptations, Migrations, and Decisions are the most recent events
	// across all nodes, newest last.
	Adaptations []AdaptationEvent `json:"adaptations,omitempty"`
	Migrations  []MigrationEvent  `json:"migrations,omitempty"`
	Decisions   []DecisionEvent   `json:"decisions,omitempty"`
	// Trends and Timeseries are the node-labeled merge of each source's
	// time-series plane: per-stage trend rows (utilization, backlog
	// slope, CPU attribution) and the raw windowed series tails, each
	// stamped with the node that produced them.
	Trends     []StageTrend `json:"trends,omitempty"`
	Timeseries []SeriesDump `json:"timeseries,omitempty"`
	// MergeErr reports a histogram bucket misalignment, if any.
	MergeErr string `json:"merge_err,omitempty"`
}

// recentTail bounds the event lists carried in a cluster view.
const recentTail = 20

// Aggregator periodically folds every node's snapshot into a ClusterView
// — the MonALISA-style aggregated monitoring plane: one place that shows
// the whole deployed pipeline. Sources are either the launcher's own
// in-process bundle (LocalSource) or remote gates-node /snapshot endpoints
// (HTTPSource). Safe for concurrent use.
type Aggregator struct {
	clk clock.Clock

	// violated mirrors the SLO detector's flag. It is atomic — not under
	// mu — because registry gauge callbacks read it at scrape time, and a
	// LocalSource scrape happens while Collect holds mu.
	violated atomic.Bool

	mu        sync.Mutex
	sources   []aggSource
	slo       *SLOMonitor
	attr      *Attribution
	flight    *FlightRecorder
	sloPrimed bool
	last      *ClusterView
}

type aggSource struct {
	name string
	fn   SnapshotFunc
}

// NewAggregator returns an empty aggregator on clk with the given SLO
// objectives.
func NewAggregator(clk clock.Clock, slo SLOConfig) *Aggregator {
	if clk == nil {
		panic("obs: NewAggregator requires a clock")
	}
	return &Aggregator{clk: clk, slo: NewSLOMonitor(slo, 0), attr: NewAttribution(clk)}
}

// SetSLOSource makes the aggregator's SLO detector resolve its objectives
// through the given source (a policy engine's SLO view) on every
// collection, instead of the static SLOConfig it was built with.
func (a *Aggregator) SetSLOSource(src SLOSource) {
	a.slo.SetSource(src)
}

// SetDecisionLog makes every SLO evaluation the aggregator runs record its
// verdict into the given decision log.
func (a *Aggregator) SetDecisionLog(t *DecisionTrail) {
	a.slo.SetDecisionLog(t)
}

// SetFlightRecorder attaches the flight recorder SLO transitions are
// recorded into; a transition into violation also triggers DumpToDisk
// ("slo-violation"), so the recorder's dump path decides whether a snapshot
// lands on disk. Nil detaches.
func (a *Aggregator) SetFlightRecorder(f *FlightRecorder) {
	a.mu.Lock()
	a.flight = f
	a.mu.Unlock()
}

// AddSource registers one node snapshot source under name.
func (a *Aggregator) AddSource(name string, fn SnapshotFunc) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.sources = append(a.sources, aggSource{name: name, fn: fn})
}

// Collect scrapes every source, merges, runs one SLO evaluation, and
// returns the new view. Failed sources appear in Nodes with their error;
// their series simply drop out of the merge for this round.
func (a *Aggregator) Collect() *ClusterView {
	a.mu.Lock()
	defer a.mu.Unlock()

	now := a.clk.Now()
	view := &ClusterView{At: now}
	var snaps []NodeSnapshot
	for _, src := range a.sources {
		snap, err := src.fn()
		st := NodeStatus{Name: src.name, OK: err == nil, At: snap.At}
		if err != nil {
			st.Err = err.Error()
		} else {
			snap.Node = src.name
			snaps = append(snaps, snap)
		}
		view.Nodes = append(view.Nodes, st)
	}

	merged, err := MergeMetrics(snaps)
	if err != nil {
		view.MergeErr = err.Error()
	}
	view.Metrics = merged
	view.Placements = placements(snaps)
	view.Latency = latencySummaries(merged)
	prevViolated := a.violated.Load()
	view.SLO = a.slo.Evaluate(now, merged)
	a.violated.Store(view.SLO.Violated)
	view.SLOEvents = a.slo.Events()
	view.Bottlenecks = a.attr.Observe(merged)
	if view.SLO.Violated != prevViolated || (!a.sloPrimed && view.SLO.Violated) {
		detail := "recovered"
		if view.SLO.Violated {
			detail = strings.Join(view.SLO.Reasons, "; ")
		}
		a.flight.Record(FlightEvent{
			Kind: FlightSLO, Detail: detail, Value: float64(view.SLO.SinkP99),
		})
		if view.SLO.Violated {
			// Best-effort post-mortem snapshot; the recorder remembers
			// the error in its JSON envelope if the write fails.
			_, _ = a.flight.DumpToDisk("slo-violation")
		}
	}
	a.sloPrimed = true
	for _, snap := range snaps {
		view.Adaptations = append(view.Adaptations, snap.Adaptations...)
		view.Migrations = append(view.Migrations, snap.Migrations...)
		view.Decisions = append(view.Decisions, snap.Decisions...)
		if ts := snap.Timeseries; ts != nil {
			if ts.Trends != nil {
				for _, t := range ts.Trends.Stages {
					t.Node = snap.Node
					view.Trends = append(view.Trends, t)
				}
			}
			for _, sd := range ts.Series {
				sd.Node = snap.Node
				view.Timeseries = append(view.Timeseries, sd)
			}
		}
	}
	sort.SliceStable(view.Trends, func(i, j int) bool {
		if view.Trends[i].Stage != view.Trends[j].Stage {
			return view.Trends[i].Stage < view.Trends[j].Stage
		}
		return view.Trends[i].Node < view.Trends[j].Node
	})
	sort.Slice(view.Adaptations, func(i, j int) bool { return view.Adaptations[i].At.Before(view.Adaptations[j].At) })
	sort.Slice(view.Migrations, func(i, j int) bool { return view.Migrations[i].At.Before(view.Migrations[j].At) })
	sort.SliceStable(view.Decisions, func(i, j int) bool { return view.Decisions[i].At.Before(view.Decisions[j].At) })
	if n := len(view.Adaptations); n > recentTail {
		view.Adaptations = view.Adaptations[n-recentTail:]
	}
	if n := len(view.Migrations); n > recentTail {
		view.Migrations = view.Migrations[n-recentTail:]
	}
	if n := len(view.Decisions); n > recentTail {
		view.Decisions = view.Decisions[n-recentTail:]
	}

	a.last = view
	return view
}

// View returns the last collected view, collecting once if none exists
// yet.
func (a *Aggregator) View() *ClusterView {
	a.mu.Lock()
	last := a.last
	a.mu.Unlock()
	if last != nil {
		return last
	}
	return a.Collect()
}

// SLOStatus returns the detector's current verdict without collecting.
func (a *Aggregator) SLOStatus() SLOStatus {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.slo.Status()
}

// Violated reports the SLO flag as of the last collection, lock-free — the
// form safe to publish as a registry gauge (SLOStatus would deadlock there:
// the gauge fires while Collect scrapes the local registry under mu).
func (a *Aggregator) Violated() bool { return a.violated.Load() }

// placements reads stage → node assignments off the per-node snapshots'
// queue-depth gauges (the one series every running instance publishes).
func placements(snaps []NodeSnapshot) []StagePlacement {
	var out []StagePlacement
	for _, snap := range snaps {
		for _, p := range snap.Metrics {
			if p.Name != "gates_queue_depth" {
				continue
			}
			node := p.Labels["node"]
			if node == "" {
				node = snap.Node
			}
			out = append(out, StagePlacement{
				Stage:    p.Labels["stage"],
				Instance: p.Labels["instance"],
				Node:     node,
				Depth:    float64(p.Value),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Stage != out[j].Stage {
			return out[i].Stage < out[j].Stage
		}
		return out[i].Instance < out[j].Instance
	})
	return out
}

// latencySummaries folds the merged e2e histograms down to one summary per
// stage.
func latencySummaries(merged []MetricPoint) []LatencySummary {
	sinks := SinkStages(merged)
	byStage := make(map[string]*struct {
		buckets []BucketCount
		count   uint64
	})
	var order []string
	for _, p := range merged {
		if p.Name != MetricE2ELatency || len(p.Buckets) == 0 {
			continue
		}
		stage := p.Labels["stage"]
		g, ok := byStage[stage]
		if !ok {
			g = &struct {
				buckets []BucketCount
				count   uint64
			}{buckets: append([]BucketCount(nil), p.Buckets...), count: uint64(p.Value)}
			byStage[stage] = g
			order = append(order, stage)
			continue
		}
		if mergeBuckets(g.buckets, p.Buckets) {
			g.count += uint64(p.Value)
		}
	}
	sort.Strings(order)
	out := make([]LatencySummary, 0, len(order))
	for _, stage := range order {
		g := byStage[stage]
		out = append(out, LatencySummary{
			Stage: stage,
			Count: g.count,
			P50:   JSONFloat(QuantileFromBuckets(g.buckets, g.count, 0.50)),
			P95:   JSONFloat(QuantileFromBuckets(g.buckets, g.count, 0.95)),
			P99:   JSONFloat(QuantileFromBuckets(g.buckets, g.count, 0.99)),
			Sink:  sinks[stage],
		})
	}
	return out
}

// Render writes the gates-top style text dashboard: placements, per-stage
// latency percentiles, SLO verdict, and the most recent adaptations and
// migrations.
func (v *ClusterView) Render(w io.Writer) {
	fmt.Fprintf(w, "== gates cluster @ %s ==\n", v.At.Format("15:04:05.000"))
	for _, n := range v.Nodes {
		mark := "up"
		if !n.OK {
			mark = "DOWN " + n.Err
		}
		fmt.Fprintf(w, "node %-12s %s\n", n.Name, mark)
	}
	if len(v.Placements) > 0 {
		verdicts := make(map[string]StageVerdict)
		if v.Bottlenecks != nil {
			for _, sv := range v.Bottlenecks.Verdicts {
				verdicts[sv.Stage+"/"+sv.Instance] = sv
			}
		}
		fmt.Fprintf(w, "%-14s %-4s %-12s %8s %8s\n", "STAGE", "INST", "NODE", "QUEUE", "BACKPR")
		for _, p := range v.Placements {
			backpr := "-"
			if sv, ok := verdicts[p.Stage+"/"+p.Instance]; ok {
				backpr = fmt.Sprintf("%d%%", pct(float64(sv.InboundStallFrac)))
				if sv.Bottleneck {
					backpr += " *"
				}
			}
			fmt.Fprintf(w, "%-14s %-4s %-12s %8.0f %8s\n", p.Stage, p.Instance, p.Node, p.Depth, backpr)
		}
	}
	if len(v.Latency) > 0 {
		fmt.Fprintf(w, "%-14s %10s %10s %10s %10s\n", "LATENCY", "COUNT", "P50", "P95", "P99")
		for _, l := range v.Latency {
			name := l.Stage
			if l.Sink {
				name += " (sink)"
			}
			fmt.Fprintf(w, "%-14s %10d %9.3gs %9.3gs %9.3gs\n",
				name, l.Count, float64(l.P50), float64(l.P95), float64(l.P99))
		}
	}
	if len(v.Trends) > 0 {
		fmt.Fprintf(w, "%-14s %-12s %6s %6s %8s %7s %6s  %s\n",
			"TREND", "NODE", "ρ̂", "stall", "backlog", "cpu-s", "cores", "depth")
		for _, t := range v.Trends {
			fmt.Fprintf(w, "%-14s %-12s %6.2f %5.0f%% %7.1f%s %7.2f %6.2f  %s\n",
				t.Stage, t.Node, t.Utilization, t.StallFrac*100,
				t.BacklogSlope, TrendArrow(t.BacklogSlope, 0.01),
				t.CPUSeconds, t.CPURate, Sparkline(t.DepthSpark))
		}
	}
	switch {
	case !v.SLO.Evaluated:
		fmt.Fprintln(w, "slo: not evaluated")
	case v.SLO.Violated:
		fmt.Fprintf(w, "slo: VIOLATED since %s: %s\n",
			v.SLO.Since.Format("15:04:05.000"), strings.Join(v.SLO.Reasons, "; "))
	default:
		fmt.Fprintf(w, "slo: ok (sink p99 %.3gs, max d-tilde %.3g)\n",
			float64(v.SLO.SinkP99), float64(v.SLO.MaxDTilde))
	}
	if v.Bottlenecks != nil {
		fmt.Fprintf(w, "bottleneck: %s\n", v.Bottlenecks.Summary)
	}
	for _, ev := range v.Adaptations {
		fmt.Fprintf(w, "adapt %s %s/%d d̃=%.3g ΔP=%.3g\n",
			ev.At.Format("15:04:05.000"), ev.Stage, ev.Instance, ev.DTilde, ev.DeltaP)
	}
	for _, ev := range v.Migrations {
		fmt.Fprintf(w, "moved %s %s/%d %s→%s drain=%s\n",
			ev.At.Format("15:04:05.000"), ev.Stage, ev.Instance, ev.From, ev.To, ev.Drain)
	}
	for _, ev := range v.Decisions {
		target := ev.Stage
		if target != "" {
			target = fmt.Sprintf(" %s/%d", ev.Stage, ev.Instance)
		}
		fmt.Fprintf(w, "decide %s %s%s %s [rule %s, policy %s]\n",
			ev.At.Format("15:04:05.000"), ev.Kind, target, ev.Outcome, ev.Rule, ev.PolicyVersion)
	}
	if v.MergeErr != "" {
		fmt.Fprintf(w, "merge error: %s\n", v.MergeErr)
	}
}
