package obs

import (
	"math"
	"strings"
	"testing"
	"time"
)

var sloBase = time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC)

// e2ePoint builds a cumulative e2e-latency histogram point with bounds
// {0.1, 1, +Inf}: low observations at or under 0.1s, mid in (0.1, 1], high
// beyond 1s.
func e2ePoint(stage, node string, low, mid, high uint64) MetricPoint {
	labels := map[string]string{"stage": stage, "instance": "0"}
	if node != "" {
		labels["node"] = node
	}
	total := low + mid + high
	return MetricPoint{
		Name: MetricE2ELatency, Kind: "histogram", Labels: labels,
		Value: JSONFloat(float64(total)),
		Sum:   JSONFloat(float64(total)) * 0.5,
		Buckets: []BucketCount{
			{UpperBound: 0.1, Count: low},
			{UpperBound: 1, Count: low + mid},
			{UpperBound: JSONFloat(math.Inf(1)), Count: total},
		},
	}
}

func fanoutPoint(stage, instance string, v float64) MetricPoint {
	return MetricPoint{Name: MetricFanout, Kind: "gauge",
		Labels: map[string]string{"stage": stage, "instance": instance},
		Value:  JSONFloat(v)}
}

func dTildePoint(stage, node string, v float64) MetricPoint {
	return MetricPoint{Name: MetricDTilde, Kind: "gauge",
		Labels: map[string]string{"stage": stage, "instance": "0", "node": node},
		Value:  JSONFloat(v)}
}

func TestSLOMonitorLatencyTripAndClear(t *testing.T) {
	m := NewSLOMonitor(SLOConfig{TargetP99: 0.5}, 0)

	slow := []MetricPoint{fanoutPoint("sink", "0", 0), e2ePoint("sink", "", 0, 100, 0)}
	st := m.Evaluate(sloBase, slow)
	if !st.Evaluated || !st.Violated {
		t.Fatalf("slow sink not flagged: %+v", st)
	}
	if float64(st.SinkP99) <= 0.5 {
		t.Fatalf("sink p99 = %g, want > target", float64(st.SinkP99))
	}
	if len(st.Reasons) == 0 || !strings.Contains(st.Reasons[0], "exceeds target") {
		t.Fatalf("reasons = %v", st.Reasons)
	}
	if !st.Since.Equal(sloBase) {
		t.Fatalf("since = %v, want trip time", st.Since)
	}

	fast := []MetricPoint{fanoutPoint("sink", "0", 0), e2ePoint("sink", "", 100, 0, 0)}
	st = m.Evaluate(sloBase.Add(time.Second), fast)
	if st.Violated {
		t.Fatalf("flag did not clear: %+v", st)
	}
	if !st.Since.Equal(sloBase.Add(time.Second)) {
		t.Fatalf("since not reset on recovery: %v", st.Since)
	}

	evs := m.Events()
	if len(evs) != 2 || !evs[0].Violated || evs[1].Violated {
		t.Fatalf("trail = %+v, want trip then clear", evs)
	}
	if evs[0].Seq >= evs[1].Seq {
		t.Fatalf("event seqs not increasing: %d, %d", evs[0].Seq, evs[1].Seq)
	}
}

func TestSLOMonitorQueueGrowthEpochs(t *testing.T) {
	m := NewSLOMonitor(SLOConfig{GrowthEpochs: 3}, 0)
	growing := []MetricPoint{dTildePoint("filter", "n1", 2.5)}
	for epoch := 1; epoch <= 2; epoch++ {
		if st := m.Evaluate(sloBase, growing); st.Violated {
			t.Fatalf("flagged after %d epochs, threshold is 3", epoch)
		}
	}
	st := m.Evaluate(sloBase, growing)
	if !st.Violated {
		t.Fatal("three consecutive positive d-tilde epochs not flagged")
	}
	if float64(st.MaxDTilde) != 2.5 {
		t.Fatalf("max d-tilde = %g, want 2.5", float64(st.MaxDTilde))
	}

	// One non-positive epoch resets the streak, clearing the flag.
	st = m.Evaluate(sloBase, []MetricPoint{dTildePoint("filter", "n1", -0.1)})
	if st.Violated {
		t.Fatalf("flag survived d-tilde <= 0: %+v", st)
	}
	// The streak really restarted: two more positive epochs stay healthy.
	for epoch := 1; epoch <= 2; epoch++ {
		if st := m.Evaluate(sloBase, growing); st.Violated {
			t.Fatalf("flagged %d epochs after reset", epoch)
		}
	}
}

func TestSLOMonitorGrowthForgetsVanishedSeries(t *testing.T) {
	m := NewSLOMonitor(SLOConfig{GrowthEpochs: 2}, 0)
	m.Evaluate(sloBase, []MetricPoint{dTildePoint("filter", "n1", 1)})
	// The stage migrates: its old series vanishes for an epoch, then a new
	// one appears on another node. The old streak must not carry over.
	m.Evaluate(sloBase, nil)
	if st := m.Evaluate(sloBase, []MetricPoint{dTildePoint("filter", "n2", 1)}); st.Violated {
		t.Fatalf("streak carried across a vanished series: %+v", st)
	}
}

func TestSinkStages(t *testing.T) {
	points := []MetricPoint{
		fanoutPoint("sink", "0", 0),
		fanoutPoint("mid", "0", 2),
		// A stage with any instance fanning out is not a sink, whatever
		// order the instances appear in.
		fanoutPoint("split", "0", 0),
		fanoutPoint("split", "1", 1),
	}
	sinks := SinkStages(points)
	if !sinks["sink"] || sinks["mid"] || sinks["split"] {
		t.Fatalf("sinks = %v", sinks)
	}
	if len(sinks) != 1 {
		t.Fatalf("extra entries: %v", sinks)
	}
}

func TestSinkP99MergesAcrossNodes(t *testing.T) {
	// The same sink stage reports from two nodes; its p99 must come from
	// the combined distribution: 100 fast + 100 slow packets put rank 198
	// in the (0.1, 1] bucket.
	points := []MetricPoint{
		fanoutPoint("sink", "0", 0),
		e2ePoint("sink", "n1", 100, 0, 0),
		e2ePoint("sink", "n2", 0, 100, 0),
		// A non-sink stage's latency must not contribute.
		fanoutPoint("mid", "0", 1),
		e2ePoint("mid", "n1", 0, 0, 100),
	}
	p99 := SinkP99(points)
	if p99 <= 0.1 || p99 > 1 {
		t.Fatalf("merged p99 = %g, want in (0.1, 1]", p99)
	}
	if got := SinkP99(nil); got != 0 {
		t.Fatalf("empty snapshot p99 = %g, want 0", got)
	}
}
