package obs

import (
	"testing"
	"time"

	"github.com/gates-middleware/gates/internal/clock"
)

func TestTracerSamplingCadence(t *testing.T) {
	clk := clock.NewManual()
	tr := NewTracer(clk, 4, 16)
	var recorded int
	for i := 0; i < 12; i++ {
		sp := tr.Start("op")
		if sp.Sampled() {
			recorded++
			clk.Advance(time.Millisecond)
		}
		sp.End()
	}
	if recorded != 3 {
		t.Fatalf("sampled %d of 12 at 1-in-4, want 3", recorded)
	}
	started, sampled := tr.Counts()
	if started != 12 || sampled != 3 {
		t.Fatalf("counts = %d started / %d sampled", started, sampled)
	}
	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("retained %d spans", len(spans))
	}
	for _, s := range spans {
		if s.Name != "op" || s.Duration != time.Millisecond {
			t.Fatalf("span %+v, want name=op duration=1ms", s)
		}
	}
}

func TestTracerFirstSpanSampled(t *testing.T) {
	tr := NewTracer(clock.NewManual(), 64, 8)
	if sp := tr.Start("first"); !sp.Sampled() {
		t.Fatal("first span must be sampled so short runs still trace")
	}
}

func TestInertSpansAreFree(t *testing.T) {
	// Zero-value span: every method is a no-op.
	var sp Span
	if sp.Sampled() {
		t.Fatal("zero span reports sampled")
	}
	sp.Annotate("k", 1)
	if d := sp.End(); d != 0 {
		t.Fatalf("zero span End = %v", d)
	}

	// Nil tracer: Start works and returns inert spans.
	var tr *Tracer
	s2 := tr.Start("x")
	if s2.Sampled() {
		t.Fatal("nil tracer produced a sampled span")
	}
	s2.End()
	if got, _ := tr.Counts(); got != 0 {
		t.Fatalf("nil tracer counts = %d", got)
	}
	if tr.Spans() != nil {
		t.Fatal("nil tracer has spans")
	}
}

func TestSpanAnnotationsAndRing(t *testing.T) {
	clk := clock.NewManual()
	tr := NewTracer(clk, 1, 2) // sample everything, keep 2
	for i := 0; i < 5; i++ {
		sp := tr.Start("batch")
		sp.Annotate("items", float64(i))
		sp.End()
	}
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("ring retained %d, want 2", len(spans))
	}
	// Oldest-first: the last two recorded were i=3 and i=4.
	if spans[0].Attrs[0].Value != 3 || spans[1].Attrs[0].Value != 4 {
		t.Fatalf("ring order wrong: %+v", spans)
	}
}

func TestSpanDoubleEndRecordsOnce(t *testing.T) {
	tr := NewTracer(clock.NewManual(), 1, 8)
	sp := tr.Start("op")
	sp.End()
	sp.End()
	if _, sampled := tr.Counts(); sampled != 1 {
		t.Fatalf("double End recorded %d spans", sampled)
	}
}

func TestTracerOpCadence(t *testing.T) {
	tr := NewTracer(clock.NewManual(), 4, 16)
	a, b := tr.Op("a"), tr.Op("b")
	var aSampled int
	for i := 0; i < 8; i++ {
		if sp := a.Start(); sp.Sampled() {
			aSampled++
			sp.End()
		}
	}
	if aSampled != 2 {
		t.Fatalf("op a sampled %d of 8 at 1-in-4, want 2", aSampled)
	}
	// Each op samples on its own cadence: b's first span is sampled even
	// though a has already burned eight.
	if sp := b.Start(); !sp.Sampled() {
		t.Fatal("op b's first span not sampled")
	} else {
		sp.End()
	}
	started, sampled := tr.Counts()
	if started != 9 || sampled != 3 {
		t.Fatalf("Counts() = %d started, %d sampled, want 9, 3", started, sampled)
	}
}

func TestTracerOpNil(t *testing.T) {
	var tr *Tracer
	op := tr.Op("x")
	if op != nil {
		t.Fatal("nil tracer returned a non-nil op")
	}
	sp := op.Start()
	if sp.Sampled() {
		t.Fatal("nil op produced a sampled span")
	}
	sp.Annotate("k", 1)
	sp.End()
}
