package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/gates-middleware/gates/internal/clock"
)

func newTestBundle(t *testing.T) (*Observability, *clock.Manual) {
	t.Helper()
	clk := clock.NewManual()
	o := New(clk, Config{SampleEvery: 1, TraceCapacity: 8, AuditCapacity: 8})
	o.Registry.Counter("gates_items_total", "items", map[string]string{"stage": "sink"}).Add(9)
	sp := o.Tracer.Start("stage.batch")
	clk.Advance(5 * time.Millisecond)
	sp.End()
	o.Audit.Record(AdaptationEvent{At: clk.Now(), Stage: "sink", DeltaP: -0.25})
	return o, clk
}

func get(t *testing.T, h http.Handler, path string) (int, string, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	return rec.Code, rec.Header().Get("Content-Type"), rec.Body.String()
}

func TestHandlerMetrics(t *testing.T) {
	o, _ := newTestBundle(t)
	code, ct, body := get(t, Handler(o), "/metrics")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	for _, want := range []string{
		`gates_items_total{stage="sink"} 9`,
		"gates_trace_spans_started_total 1",
		"gates_trace_spans_sampled_total 1",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("missing %q in:\n%s", want, body)
		}
	}
}

func TestHandlerSnapshot(t *testing.T) {
	o, _ := newTestBundle(t)
	code, ct, body := get(t, Handler(o), "/snapshot")
	if code != http.StatusOK || !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("status %d content-type %q", code, ct)
	}
	var got struct {
		At      time.Time     `json:"at"`
		Metrics []MetricPoint `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatal(err)
	}
	if got.At.IsZero() || len(got.Metrics) == 0 {
		t.Fatalf("snapshot = %+v", got)
	}
	found := false
	for _, p := range got.Metrics {
		if p.Name == "gates_items_total" && p.Value == 9 && p.Labels["stage"] == "sink" {
			found = true
		}
	}
	if !found {
		t.Fatalf("gates_items_total missing from snapshot: %s", body)
	}
}

func TestHandlerAdaptations(t *testing.T) {
	o, _ := newTestBundle(t)
	_, _, body := get(t, Handler(o), "/adaptations")
	var got struct {
		Total  uint64            `json:"total"`
		Events []AdaptationEvent `json:"events"`
	}
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatal(err)
	}
	if got.Total != 1 || len(got.Events) != 1 || got.Events[0].DeltaP != -0.25 {
		t.Fatalf("adaptations = %+v", got)
	}
}

func TestHandlerTraces(t *testing.T) {
	o, _ := newTestBundle(t)
	_, _, body := get(t, Handler(o), "/traces")
	var got struct {
		Started uint64       `json:"started"`
		Sampled uint64       `json:"sampled"`
		Spans   []SpanRecord `json:"spans"`
	}
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatal(err)
	}
	if got.Started != 1 || got.Sampled != 1 || len(got.Spans) != 1 {
		t.Fatalf("traces = %+v", got)
	}
	if got.Spans[0].Name != "stage.batch" || got.Spans[0].Duration != 5*time.Millisecond {
		t.Fatalf("span = %+v", got.Spans[0])
	}
}

func TestHandlerIndexAndNotFound(t *testing.T) {
	o, _ := newTestBundle(t)
	h := Handler(o)
	code, _, body := get(t, h, "/")
	if code != http.StatusOK || !strings.Contains(body, "/metrics") {
		t.Fatalf("index: %d %q", code, body)
	}
	if code, _, _ := get(t, h, "/nope"); code != http.StatusNotFound {
		t.Fatalf("unknown path status %d", code)
	}
}

func TestHandlerDisabledTracer(t *testing.T) {
	o := New(clock.NewManual(), Config{SampleEvery: -1})
	_, _, body := get(t, Handler(o), "/traces")
	var got struct {
		Started uint64       `json:"started"`
		Spans   []SpanRecord `json:"spans"`
	}
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatal(err)
	}
	if got.Started != 0 || len(got.Spans) != 0 {
		t.Fatalf("disabled tracer served %+v", got)
	}
	// /adaptations must serve an empty list, not null.
	_, _, body = get(t, Handler(o), "/adaptations")
	if !strings.Contains(body, `"events": []`) {
		t.Fatalf("empty trail not an empty list: %s", body)
	}
}

func TestServeOverTCP(t *testing.T) {
	o, _ := newTestBundle(t)
	srv, err := Serve("127.0.0.1:0", o)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "gates_items_total") {
		t.Fatalf("GET /metrics over TCP: %d %s", resp.StatusCode, body)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}
