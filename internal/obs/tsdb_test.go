package obs

import (
	"strings"
	"testing"
	"time"

	"github.com/gates-middleware/gates/internal/clock"
)

func TestSeriesRingWrap(t *testing.T) {
	s := NewSeries(4)
	base := time.Unix(0, 0)
	for i := 0; i < 6; i++ {
		s.Add(base.Add(time.Duration(i)*time.Second), float64(i))
	}
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want 4", s.Len())
	}
	if s.Total() != 6 {
		t.Fatalf("Total = %d, want 6", s.Total())
	}
	got := s.Samples(time.Time{})
	want := []float64{2, 3, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("Samples returned %d values, want %d", len(got), len(want))
	}
	for i, w := range want {
		if got[i].V != w {
			t.Errorf("Samples[%d].V = %g, want %g", i, got[i].V, w)
		}
	}
	if last, ok := s.Last(); !ok || last.V != 5 {
		t.Errorf("Last = %+v, %v; want V=5", last, ok)
	}
	// The since filter trims the head of the window.
	tail := s.Samples(base.Add(4 * time.Second))
	if len(tail) != 2 || tail[0].V != 4 {
		t.Errorf("Samples(since) = %+v, want the last two", tail)
	}
	if vals := s.LastN(2); len(vals) != 2 || vals[0] != 4 || vals[1] != 5 {
		t.Errorf("LastN(2) = %v, want [4 5]", vals)
	}
}

func TestSeriesSlopeDeltaMinMax(t *testing.T) {
	s := NewSeries(16)
	base := time.Unix(100, 0)
	// depth(t) = 3*t + 7: slope must come back as 3 per virtual second.
	for i := 0; i < 10; i++ {
		s.Add(base.Add(time.Duration(i)*time.Second), 3*float64(i)+7)
	}
	if slope := s.SlopeLastN(10); slope < 2.999 || slope > 3.001 {
		t.Errorf("SlopeLastN = %g, want 3", slope)
	}
	if d := s.DeltaLastN(10); d != 27 {
		t.Errorf("DeltaLastN = %g, want 27", d)
	}
	min, max, ok := s.MinMax()
	if !ok || min != 7 || max != 34 {
		t.Errorf("MinMax = %g, %g, %v; want 7, 34, true", min, max, ok)
	}
	// Fewer than two samples: no slope, no delta.
	s2 := NewSeries(4)
	s2.Add(base, 42)
	if s2.SlopeLastN(4) != 0 || s2.DeltaLastN(4) != 0 {
		t.Error("single-sample series must report zero slope and delta")
	}
}

func TestTSDBDumpFilters(t *testing.T) {
	db := NewTSDB(time.Second, 10*time.Second)
	if db.Capacity() != 10 {
		t.Fatalf("Capacity = %d, want 10", db.Capacity())
	}
	now := time.Unix(1000, 0)
	db.Series("alpha", TSDepth).Add(now, 1)
	db.Series("beta", TSDepth).Add(now, 2)
	db.Series("", TSSinkP99).Add(now, 0.5)

	stages := db.Stages()
	if len(stages) != 2 || stages[0] != "alpha" || stages[1] != "beta" {
		t.Fatalf("Stages = %v, want [alpha beta]", stages)
	}

	all := db.Dump(now, 0, "")
	if len(all) != 3 {
		t.Fatalf("unfiltered Dump has %d series, want 3", len(all))
	}
	// Stage filter keeps the matching stage plus pipeline-wide "" series.
	one := db.Dump(now, 0, "beta")
	if len(one) != 2 {
		t.Fatalf("stage-filtered Dump has %d series, want 2", len(one))
	}
	if one[0].Name != TSSinkP99 || one[1].Stage != "beta" {
		t.Errorf("filtered Dump = %+v, want sink_p99 then beta", one)
	}
}

func TestSparklineAndTrendArrow(t *testing.T) {
	if got := Sparkline(nil); got != "" {
		t.Errorf("empty sparkline = %q", got)
	}
	got := Sparkline([]float64{0, 1})
	if !strings.HasPrefix(got, "▁") || !strings.HasSuffix(got, "█") {
		t.Errorf("Sparkline([0 1]) = %q, want lowest then highest rune", got)
	}
	if got := Sparkline([]float64{5, 5, 5}); got != "▁▁▁" {
		t.Errorf("flat sparkline = %q, want all-lowest", got)
	}
	if TrendArrow(1, 0.01) != "↑" || TrendArrow(-1, 0.01) != "↓" || TrendArrow(0.005, 0.01) != "→" {
		t.Error("TrendArrow direction mapping wrong")
	}
}

// sampleEpoch advances the manual clock one epoch and samples.
func sampleEpoch(clk *clock.Manual, s *Sampler, epoch time.Duration) {
	clk.Advance(epoch)
	s.SampleNow()
}

// TestSamplerConstrictedStageTrend is the acceptance test of the trend
// plane: a deliberately constricted stage — arrivals outpacing service,
// queue growing every epoch — must be flagged BacklogRising by the
// TrendReader within 3 epochs of the constriction appearing.
func TestSamplerConstrictedStageTrend(t *testing.T) {
	clk := clock.NewManual()
	reg := NewRegistry(clk)
	db := NewTSDB(DefaultTimeseriesEpoch, DefaultTimeseriesWindow)
	s := NewSampler(clk, reg, db, nil, nil)

	labels := map[string]string{"stage": "choke", "instance": "0"}
	in := reg.Counter("gates_stage_items_in_total", "", labels)
	out := reg.Counter("gates_stage_items_out_total", "", labels)
	depth := reg.Gauge("gates_queue_depth", "", labels)

	// Priming epoch: rates need a previous observation.
	s.SampleNow()

	// The constriction: 20 in, 10 out per epoch; the queue grows by 10.
	for i := 1; i <= 3; i++ {
		in.Add(20)
		out.Add(10)
		depth.Set(float64(10 * i))
		sampleEpoch(clk, s, db.Epoch())
	}

	sum := s.Trends()
	if len(sum.Stages) != 1 || sum.Stages[0].Stage != "choke" {
		t.Fatalf("Trends.Stages = %+v, want one row for choke", sum.Stages)
	}
	tr := sum.Stages[0]
	if !tr.BacklogRising {
		t.Fatalf("BacklogRising = false after 3 epochs of growth; trend %+v", tr)
	}
	if tr.BacklogSlope <= 0 {
		t.Errorf("BacklogSlope = %g, want > 0", tr.BacklogSlope)
	}
	if tr.Depth != 30 {
		t.Errorf("Depth = %g, want 30", tr.Depth)
	}
	// Counter-rate fallback ρ̂ = λ/μ = 2 (no adaptation trail wired).
	if tr.Utilization < 1.99 || tr.Utilization > 2.01 {
		t.Errorf("Utilization = %g, want 2", tr.Utilization)
	}
	epoch := db.Epoch().Seconds()
	wantRate := 20 / epoch
	if tr.Arrival < wantRate*0.99 || tr.Arrival > wantRate*1.01 {
		t.Errorf("Arrival = %g, want ~%g", tr.Arrival, wantRate)
	}
	if len(tr.DepthSpark) == 0 {
		t.Error("DepthSpark empty, want the depth tail")
	}
}

// TestSamplerPrefersAuditTrailRho: a fresh adaptation event's λ/μ beats the
// sampler's own counter rates; a stale one falls back.
func TestSamplerPrefersAuditTrailRho(t *testing.T) {
	clk := clock.NewManual()
	reg := NewRegistry(clk)
	db := NewTSDB(time.Second, time.Minute)
	aud := NewAuditTrail(16)
	s := NewSampler(clk, reg, db, nil, aud)

	labels := map[string]string{"stage": "worker", "instance": "0"}
	in := reg.Counter("gates_stage_items_in_total", "", labels)
	out := reg.Counter("gates_stage_items_out_total", "", labels)
	reg.Gauge("gates_queue_depth", "", labels)

	s.SampleNow()
	// Counters say ρ = 1 (10 in, 10 out); the controller's epoch says 3.
	in.Add(10)
	out.Add(10)
	aud.Record(AdaptationEvent{At: clk.Now(), Stage: "worker", Lambda: 30, Mu: 10})
	sampleEpoch(clk, s, db.Epoch())

	last, ok := db.Series("worker", TSUtilization).Last()
	if !ok || last.V < 2.99 || last.V > 3.01 {
		t.Fatalf("utilization = %v, %v; want 3 from the audit trail", last.V, ok)
	}

	// Let the event age out of the trend window; rates take over.
	for i := 0; i < trendEpochs+1; i++ {
		in.Add(10)
		out.Add(10)
		sampleEpoch(clk, s, db.Epoch())
	}
	last, ok = db.Series("worker", TSUtilization).Last()
	if !ok || last.V < 0.99 || last.V > 1.01 {
		t.Fatalf("utilization = %v, %v; want counter fallback 1 after the event went stale", last.V, ok)
	}
}

func TestSamplerRhoSaturation(t *testing.T) {
	clk := clock.NewManual()
	reg := NewRegistry(clk)
	db := NewTSDB(time.Second, time.Minute)
	s := NewSampler(clk, reg, db, nil, nil)

	labels := map[string]string{"stage": "stuck", "instance": "0"}
	in := reg.Counter("gates_stage_items_in_total", "", labels)
	reg.Counter("gates_stage_items_out_total", "", labels)
	reg.Gauge("gates_queue_depth", "", labels)

	s.SampleNow()
	in.Add(100) // arrivals, zero departures: saturated
	sampleEpoch(clk, s, db.Epoch())
	last, ok := db.Series("stuck", TSUtilization).Last()
	if !ok || last.V != rhoCeil {
		t.Fatalf("utilization = %v, %v; want the ceiling %g", last.V, ok, rhoCeil)
	}
}

func TestSamplerSLOHeadroom(t *testing.T) {
	clk := clock.NewManual()
	reg := NewRegistry(clk)
	db := NewTSDB(time.Second, time.Minute)
	s := NewSampler(clk, reg, db, nil, nil)
	s.SetSLOSource(func() (SLOConfig, string) {
		return SLOConfig{TargetP99: 2.0}, "test"
	})
	// Inject a sink p99 of 0.5s directly; headroom = (2 - 0.5) / 2.
	db.Series("", TSSinkP99).Add(clk.Now(), 0.5)
	sum := s.Trends()
	if float64(sum.TargetP99) != 2.0 {
		t.Fatalf("TargetP99 = %v, want 2", sum.TargetP99)
	}
	if h := float64(sum.SLOHeadroom); h < 0.749 || h > 0.751 {
		t.Fatalf("SLOHeadroom = %v, want 0.75", h)
	}
}

// TestSamplerDump exercises the /timeseries document shape end to end.
func TestSamplerDump(t *testing.T) {
	clk := clock.NewManual()
	reg := NewRegistry(clk)
	db := NewTSDB(time.Second, time.Minute)
	s := NewSampler(clk, reg, db, nil, nil)

	labels := map[string]string{"stage": "w", "instance": "0"}
	reg.Gauge("gates_queue_depth", "", labels).Set(4)
	s.SampleNow()
	sampleEpoch(clk, s, db.Epoch())

	d := s.Dump(0, "")
	if d.Epochs != 2 {
		t.Fatalf("Dump.Epochs = %d, want 2", d.Epochs)
	}
	if d.EpochSeconds != 1 {
		t.Errorf("EpochSeconds = %g, want 1", d.EpochSeconds)
	}
	if d.Trends == nil || len(d.Trends.Stages) != 1 {
		t.Fatalf("Dump.Trends = %+v, want one stage", d.Trends)
	}
	if len(d.Series) == 0 {
		t.Fatal("Dump.Series empty")
	}
	for _, sd := range d.Series {
		if sd.Stage == "w" && sd.Name == TSDepth && len(sd.Samples) == 2 {
			return
		}
	}
	t.Fatalf("Dump.Series %+v missing the w/depth series with 2 samples", d.Series)
}
