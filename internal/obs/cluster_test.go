package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/gates-middleware/gates/internal/clock"
)

func counterPoint(name, node string, v float64) MetricPoint {
	labels := map[string]string{"node": node}
	return MetricPoint{Name: name, Kind: "counter", Labels: labels, Value: JSONFloat(v)}
}

func TestMergeMetricsDisjointNodes(t *testing.T) {
	snaps := []NodeSnapshot{
		{Node: "n1", Metrics: []MetricPoint{
			counterPoint("gates_items_total", "n1", 10),
			e2ePoint("sink", "n1", 50, 10, 0),
		}},
		{Node: "n2", Metrics: []MetricPoint{
			counterPoint("gates_items_total", "n2", 32),
			e2ePoint("sink", "n2", 20, 0, 5),
		}},
	}
	merged, err := MergeMetrics(snaps)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	byName := make(map[string]MetricPoint)
	for _, p := range merged {
		byName[p.Name] = p
		if _, ok := p.Labels["node"]; ok {
			t.Fatalf("%s kept its node label: %v", p.Name, p.Labels)
		}
	}
	if len(merged) != 2 {
		t.Fatalf("got %d series, want 2 (counters and histograms folded): %v", len(merged), merged)
	}
	if got := float64(byName["gates_items_total"].Value); got != 42 {
		t.Fatalf("counter sum = %g, want 42", got)
	}

	h := byName[MetricE2ELatency]
	if got := float64(h.Value); got != 85 {
		t.Fatalf("histogram count = %g, want 85", got)
	}
	// Count/sum invariants: cumulative buckets end at the total count, and
	// the merged Sum is the sum of the parts.
	if last := h.Buckets[len(h.Buckets)-1].Count; last != 85 {
		t.Fatalf("last cumulative bucket = %d, want total 85", last)
	}
	for i := 1; i < len(h.Buckets); i++ {
		if h.Buckets[i].Count < h.Buckets[i-1].Count {
			t.Fatalf("buckets not cumulative at %d: %+v", i, h.Buckets)
		}
	}
	wantSum := float64(snaps[0].Metrics[1].Sum + snaps[1].Metrics[1].Sum)
	if got := float64(h.Sum); math.Abs(got-wantSum) > 1e-9 {
		t.Fatalf("merged sum = %g, want %g", got, wantSum)
	}
	if h.Quantiles == nil || float64(h.Quantiles["p99"]) <= 0 {
		t.Fatalf("merged histogram missing quantiles: %+v", h.Quantiles)
	}
}

func TestMergeMetricsMisalignedBuckets(t *testing.T) {
	bad := e2ePoint("sink", "n2", 1, 0, 0)
	bad.Buckets[0].UpperBound = 0.2
	snaps := []NodeSnapshot{
		{Node: "n1", Metrics: []MetricPoint{e2ePoint("sink", "n1", 5, 0, 0)}},
		{Node: "n2", Metrics: []MetricPoint{bad}},
	}
	merged, err := MergeMetrics(snaps)
	if err == nil || !strings.Contains(err.Error(), "bucket bounds differ") {
		t.Fatalf("misalignment not reported: %v", err)
	}
	// The first node's distribution survives unmerged.
	if len(merged) != 1 || merged[0].Buckets[0].Count != 5 {
		t.Fatalf("merged = %+v", merged)
	}
}

// TestAggregatorSLOTripAndClear scripts a deployment that falls behind —
// arrival rate above processing rate shows up as positive d-tilde — and
// then recovers after adaptation: the cluster flag must trip after the
// configured epochs and clear once growth stops.
func TestAggregatorSLOTripAndClear(t *testing.T) {
	clk := clock.NewManual()
	agg := NewAggregator(clk, SLOConfig{GrowthEpochs: 3})
	dTilde := 4.0
	agg.AddSource("n1", func() (NodeSnapshot, error) {
		return NodeSnapshot{At: clk.Now(), Metrics: []MetricPoint{dTildePoint("filter", "n1", dTilde)}}, nil
	})

	for epoch := 1; epoch <= 2; epoch++ {
		if v := agg.Collect(); v.SLO.Violated || agg.Violated() {
			t.Fatalf("flag tripped after %d epochs", epoch)
		}
		clk.Advance(time.Second)
	}
	view := agg.Collect()
	if !view.SLO.Violated || !agg.Violated() {
		t.Fatalf("flag not tripped on epoch 3: %+v", view.SLO)
	}

	// Adaptation converges: d-tilde drops to zero and the flag clears.
	dTilde = 0
	clk.Advance(time.Second)
	view = agg.Collect()
	if view.SLO.Violated || agg.Violated() {
		t.Fatalf("flag did not clear after convergence: %+v", view.SLO)
	}
	// Trail: the initial healthy baseline, the trip, and the clear.
	evs := view.SLOEvents
	if len(evs) != 3 || evs[0].Violated || !evs[1].Violated || evs[2].Violated {
		t.Fatalf("SLO events = %+v, want healthy, trip, clear", evs)
	}
}

func TestAggregatorFailedSource(t *testing.T) {
	clk := clock.NewManual()
	agg := NewAggregator(clk, SLOConfig{})
	agg.AddSource("good", func() (NodeSnapshot, error) {
		return NodeSnapshot{At: clk.Now(), Metrics: []MetricPoint{counterPoint("gates_items_total", "n1", 7)}}, nil
	})
	agg.AddSource("bad", func() (NodeSnapshot, error) {
		return NodeSnapshot{}, fmt.Errorf("connection refused")
	})
	view := agg.Collect()
	if len(view.Nodes) != 2 || !view.Nodes[0].OK || view.Nodes[1].OK {
		t.Fatalf("nodes = %+v", view.Nodes)
	}
	if view.Nodes[1].Err == "" {
		t.Fatal("failed source's error not reported")
	}
	if len(view.Metrics) != 1 || float64(view.Metrics[0].Value) != 7 {
		t.Fatalf("healthy node's series lost: %+v", view.Metrics)
	}
	var buf strings.Builder
	view.Render(&buf)
	if !strings.Contains(buf.String(), "DOWN") {
		t.Fatalf("render hides the down node:\n%s", buf.String())
	}
}

func TestHTTPSource(t *testing.T) {
	want := NodeSnapshot{
		At:      time.Date(2000, 1, 1, 0, 0, 5, 0, time.UTC),
		Metrics: []MetricPoint{counterPoint("gates_items_total", "n1", 3)},
	}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/snapshot" {
			http.NotFound(w, r)
			return
		}
		json.NewEncoder(w).Encode(want)
	}))
	defer srv.Close()

	// Bare host:port must gain the http:// scheme.
	fn := HTTPSource(srv.Client(), strings.TrimPrefix(srv.URL, "http://"))
	got, err := fn()
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	if !got.At.Equal(want.At) || len(got.Metrics) != 1 || got.Metrics[0].Name != "gates_items_total" {
		t.Fatalf("snapshot = %+v", got)
	}

	bad := HTTPSource(srv.Client(), srv.URL+"/missing")
	if _, err := bad(); err == nil {
		t.Fatal("non-200 scrape did not error")
	}
}

func TestClusterViewRender(t *testing.T) {
	clk := clock.NewManual()
	agg := NewAggregator(clk, SLOConfig{TargetP99: 10})
	agg.AddSource("n1", func() (NodeSnapshot, error) {
		return NodeSnapshot{At: clk.Now(), Metrics: []MetricPoint{
			{Name: "gates_queue_depth", Kind: "gauge",
				Labels: map[string]string{"stage": "sink", "instance": "0", "node": "n1"},
				Value:  3},
			fanoutPoint("sink", "0", 0),
			e2ePoint("sink", "n1", 90, 10, 0),
		}}, nil
	})
	view := agg.Collect()
	if len(view.Placements) != 1 || view.Placements[0].Node != "n1" || view.Placements[0].Depth != 3 {
		t.Fatalf("placements = %+v", view.Placements)
	}
	if len(view.Latency) != 1 || !view.Latency[0].Sink || view.Latency[0].Count != 100 {
		t.Fatalf("latency = %+v", view.Latency)
	}

	var buf strings.Builder
	view.Render(&buf)
	out := buf.String()
	for _, want := range []string{"gates cluster", "node n1", "STAGE", "sink (sink)", "slo: ok"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}
