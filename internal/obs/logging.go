package obs

import (
	"context"
	"io"
	"log/slog"

	"github.com/gates-middleware/gates/internal/clock"
)

// NewLogger returns a structured logger whose records are stamped with the
// virtual clock instead of wall time, so a 500x-compressed experiment's log
// reads like the real-time run it models. Nil level means slog.LevelInfo.
func NewLogger(w io.Writer, clk clock.Clock, level slog.Leveler) *slog.Logger {
	if clk == nil {
		panic("obs: NewLogger requires a clock")
	}
	if level == nil {
		level = slog.LevelInfo
	}
	inner := slog.NewTextHandler(w, &slog.HandlerOptions{Level: level})
	return slog.New(&clockHandler{inner: inner, clk: clk})
}

// clockHandler rewrites every record's timestamp to the virtual clock
// before delegating to the wrapped handler.
type clockHandler struct {
	inner slog.Handler
	clk   clock.Clock
}

func (h *clockHandler) Enabled(ctx context.Context, lvl slog.Level) bool {
	return h.inner.Enabled(ctx, lvl)
}

func (h *clockHandler) Handle(ctx context.Context, r slog.Record) error {
	r.Time = h.clk.Now()
	return h.inner.Handle(ctx, r)
}

func (h *clockHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return &clockHandler{inner: h.inner.WithAttrs(attrs), clk: h.clk}
}

func (h *clockHandler) WithGroup(name string) slog.Handler {
	return &clockHandler{inner: h.inner.WithGroup(name), clk: h.clk}
}

// Nop returns a logger that discards everything without formatting it —
// the default for unobserved components, cheap enough to call on any path.
func Nop() *slog.Logger { return slog.New(nopHandler{}) }

type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (nopHandler) WithAttrs([]slog.Attr) slog.Handler        { return nopHandler{} }
func (nopHandler) WithGroup(string) slog.Handler             { return nopHandler{} }
