package obs

import (
	"math"
	"testing"

	"github.com/gates-middleware/gates/internal/clock"
)

func TestLatencyBucketsShape(t *testing.T) {
	want := (latencyMaxExp-latencyMinExp)*latencyBucketsPerDecade + 1
	if len(LatencyBuckets) != want {
		t.Fatalf("got %d bounds, want %d", len(LatencyBuckets), want)
	}
	if got := LatencyBuckets[0]; math.Abs(got-1e-5) > 1e-12 {
		t.Fatalf("first bound = %g, want 1e-5", got)
	}
	last := LatencyBuckets[len(LatencyBuckets)-1]
	if math.Abs(last-1e3)/1e3 > 1e-9 {
		t.Fatalf("last bound = %g, want 1e3", last)
	}
	factor := math.Pow(10, 1.0/latencyBucketsPerDecade)
	for i := 1; i < len(LatencyBuckets); i++ {
		if LatencyBuckets[i] <= LatencyBuckets[i-1] {
			t.Fatalf("bounds not increasing at %d: %g <= %g", i, LatencyBuckets[i], LatencyBuckets[i-1])
		}
		ratio := LatencyBuckets[i] / LatencyBuckets[i-1]
		if math.Abs(ratio-factor) > 1e-9 {
			t.Fatalf("growth factor at %d = %g, want %g", i, ratio, factor)
		}
	}
}

// TestHistogramQuantileAccuracy checks interpolated quantiles stay within
// one bucket's relative width (~±16%) of the exact sample quantile.
func TestHistogramQuantileAccuracy(t *testing.T) {
	reg := NewRegistry(clock.NewManual())
	h := reg.Histogram("lat", "", LatencyBuckets, nil)
	// 1000 observations spread over two decades.
	var vals []float64
	for i := 1; i <= 1000; i++ {
		vals = append(vals, 0.001*float64(i)) // 1ms .. 1s
	}
	for _, v := range vals {
		h.Observe(v)
	}
	factor := math.Pow(10, 1.0/latencyBucketsPerDecade)
	for _, tc := range []struct {
		q     float64
		exact float64
	}{{0.50, 0.500}, {0.95, 0.950}, {0.99, 0.990}} {
		got := h.Quantile(tc.q)
		if got < tc.exact/factor || got > tc.exact*factor {
			t.Errorf("q=%.2f: got %g, want within one bucket of %g", tc.q, got, tc.exact)
		}
	}
}

func TestQuantileFromBucketsEdges(t *testing.T) {
	if got := QuantileFromBuckets(nil, 0, 0.99); got != 0 {
		t.Fatalf("empty histogram quantile = %g, want 0", got)
	}
	// All observations in the +Inf overflow bucket clamp to the last
	// finite bound.
	buckets := []BucketCount{
		{UpperBound: 1, Count: 0},
		{UpperBound: JSONFloat(math.Inf(1)), Count: 10},
	}
	if got := QuantileFromBuckets(buckets, 10, 0.99); got != 1 {
		t.Fatalf("overflow quantile = %g, want clamp to 1", got)
	}
	// A single observation defines every quantile.
	one := []BucketCount{
		{UpperBound: 1, Count: 1},
		{UpperBound: JSONFloat(math.Inf(1)), Count: 1},
	}
	lo := QuantileFromBuckets(one, 1, 0.01)
	hi := QuantileFromBuckets(one, 1, 0.99)
	if lo != hi {
		t.Fatalf("single-sample quantiles differ: %g vs %g", lo, hi)
	}
}

func TestMergeBuckets(t *testing.T) {
	inf := JSONFloat(math.Inf(1))
	a := []BucketCount{{UpperBound: 1, Count: 2}, {UpperBound: inf, Count: 5}}
	b := []BucketCount{{UpperBound: 1, Count: 3}, {UpperBound: inf, Count: 4}}
	if !mergeBuckets(a, b) {
		t.Fatal("aligned buckets refused")
	}
	if a[0].Count != 5 || a[1].Count != 9 {
		t.Fatalf("merged counts = %d/%d, want 5/9", a[0].Count, a[1].Count)
	}
	// Length mismatch.
	if mergeBuckets(a, a[:1]) {
		t.Fatal("length mismatch merged")
	}
	// Bound mismatch must refuse and leave dst untouched.
	c := []BucketCount{{UpperBound: 2, Count: 1}, {UpperBound: inf, Count: 1}}
	before := a[0].Count
	if mergeBuckets(a, c) {
		t.Fatal("misaligned bounds merged")
	}
	if a[0].Count != before {
		t.Fatalf("dst mutated on refused merge: %d", a[0].Count)
	}
}

func TestRegistryHistogramQuantile(t *testing.T) {
	reg := NewRegistry(clock.NewManual())
	lb := map[string]string{"stage": "sink"}
	h := reg.Histogram(MetricE2ELatency, "", LatencyBuckets, lb)
	h.Observe(0.1)
	if _, ok := reg.HistogramQuantile(MetricE2ELatency, map[string]string{"stage": "other"}, 0.99); ok {
		t.Fatal("missing series reported ok")
	}
	reg.Counter("plain", "", nil).Add(1)
	if _, ok := reg.HistogramQuantile("plain", nil, 0.99); ok {
		t.Fatal("counter series answered a histogram quantile")
	}
	v, ok := reg.HistogramQuantile(MetricE2ELatency, lb, 0.99)
	if !ok || v <= 0 {
		t.Fatalf("quantile = %g, %v", v, ok)
	}
}

// TestScratchMatchesObserve pins the hot-path integer-nanosecond bucketing
// (Scratch.ObserveNS via the exponent table) to Observe's float semantics:
// the same durations must land in the same buckets with the same total sum,
// for values spanning below the first bound, above the last, and every
// decade between.
func TestScratchMatchesObserve(t *testing.T) {
	direct := newHistogram(LatencyBuckets)
	scratched := newHistogram(LatencyBuckets)
	scr := scratched.Scratch()

	// A deterministic spread: sub-bucket, mid-range, overflow, and a dense
	// sweep that crosses every binary octave the table indexes.
	var durs []int64
	for ns := int64(1); ns < int64(5e12); ns = ns*3/2 + 7 {
		durs = append(durs, ns)
	}
	durs = append(durs, 0, -5, 1, 999, int64(1e15))
	for _, ns := range durs {
		direct.Observe(float64(ns) * 1e-9)
		scr.ObserveNS(ns)
	}
	scr.Flush()

	_, dc, db := direct.State()
	ss, sc, sb := scratched.State()
	if dc != sc {
		t.Fatalf("counts differ: direct %d, scratch %d", dc, sc)
	}
	for i := range db {
		if db[i].Count != sb[i].Count {
			t.Fatalf("bucket %d (<= %g): direct %d, scratch %d",
				i, float64(db[i].UpperBound), db[i].Count, sb[i].Count)
		}
	}
	var wantSum float64
	for _, ns := range durs {
		wantSum += float64(ns) * 1e-9
	}
	if math.Abs(ss-wantSum) > math.Abs(wantSum)*1e-9 {
		t.Fatalf("scratch sum = %g, want %g", ss, wantSum)
	}
}

// TestScratchFlushIdempotent checks Flush is a no-op with nothing buffered
// and that interleaved observe/flush rounds accumulate correctly.
func TestScratchFlushIdempotent(t *testing.T) {
	h := newHistogram(LatencyBuckets)
	scr := h.Scratch()
	scr.Flush() // empty flush must not publish anything
	if _, c, _ := h.State(); c != 0 {
		t.Fatalf("empty flush published %d observations", c)
	}
	for round := 0; round < 3; round++ {
		for i := 0; i < 10; i++ {
			scr.ObserveNS(int64(1e6)) // 1ms
		}
		scr.Flush()
	}
	scr.Flush()
	_, c, _ := h.State()
	if c != 30 {
		t.Fatalf("count = %d, want 30", c)
	}
}
