package obs

import (
	"sync"
	"sync/atomic"
	"time"

	"github.com/gates-middleware/gates/internal/clock"
)

// DefaultSampleEvery is the default trace sampling period: one span
// recorded per this many started.
const DefaultSampleEvery = 64

// DefaultTraceCapacity is the default retained-span ring size.
const DefaultTraceCapacity = 256

// Tracer samples lightweight spans on the hot data path. The unsampled
// fast path is one atomic increment and a branch — no clock read, no
// allocation — so instrumenting a per-batch loop costs effectively nothing
// between samples. Sampled spans read the virtual clock at start and end
// and land in a bounded ring.
//
// A nil *Tracer is valid: Start returns an inert span.
type Tracer struct {
	clk   clock.Clock
	every uint64

	seq     atomic.Uint64 // spans started via Start
	sampled atomic.Uint64 // spans recorded

	mu    sync.Mutex
	ops   []*Op
	ring  []SpanRecord
	next  int
	count int
}

// NewTracer returns a tracer sampling one span in every `every` started
// (<=0 selects DefaultSampleEvery; 1 records everything), retaining up to
// capacity completed spans (<=0 selects DefaultTraceCapacity).
func NewTracer(clk clock.Clock, every, capacity int) *Tracer {
	if clk == nil {
		panic("obs: NewTracer requires a clock")
	}
	if every <= 0 {
		every = DefaultSampleEvery
	}
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{clk: clk, every: uint64(every), ring: make([]SpanRecord, capacity)}
}

// SampleEvery returns the sampling period.
func (t *Tracer) SampleEvery() int {
	if t == nil {
		return 0
	}
	return int(t.every)
}

// Start begins a span. On a nil tracer, or when this span falls between
// samples, the returned span is inert (Sampled reports false and End is
// free). Safe for concurrent use.
func (t *Tracer) Start(name string) Span {
	if t == nil {
		return Span{}
	}
	n := t.seq.Add(1)
	if (n-1)%t.every != 0 {
		return Span{}
	}
	return Span{t: t, name: name, start: t.clk.Now()}
}

// Op is a per-call-site sampling handle. Start on a shared Tracer bounces
// one cache line between every hot goroutine in the process; an Op gives a
// call site its own padded counter, so concurrent stages sample
// independently at full speed. Create one per instrumented site at setup
// time and reuse it. A nil *Op (from a nil or disabled tracer) starts inert
// spans.
type Op struct {
	t    *Tracer
	name string
	// pow2/mask turn the cadence check into a bitmask when every is a
	// power of two (it is for the default 64 and the common overrides),
	// sparing the unsampled fast path a runtime integer division.
	pow2 bool
	mask uint64
	seq  atomic.Uint64
	_    [48]byte // pad Op past a cache line; hot counters must not false-share
}

// Op returns a sampling handle for one call site. Each handle samples on
// its own 1-in-every cadence, starting with its first span.
func (t *Tracer) Op(name string) *Op {
	if t == nil {
		return nil
	}
	op := &Op{t: t, name: name}
	if t.every&(t.every-1) == 0 {
		op.pow2, op.mask = true, t.every-1
	}
	t.mu.Lock()
	t.ops = append(t.ops, op)
	t.mu.Unlock()
	return op
}

// Start begins a span on this call site's cadence; between samples it
// returns an inert span at the cost of one uncontended atomic increment.
func (o *Op) Start() Span {
	if o == nil {
		return Span{}
	}
	n := o.seq.Add(1)
	if o.pow2 {
		if (n-1)&o.mask != 0 {
			return Span{}
		}
	} else if (n-1)%o.t.every != 0 {
		return Span{}
	}
	return Span{t: o.t, name: o.name, start: o.t.clk.Now()}
}

// StartTraced begins a forced-sampled span belonging to a propagated
// distributed trace: the span is always recorded (no cadence check) and
// carries the trace id and hop count, so the span trees of sampled batches
// stay complete as they cross stages and nodes. The id/hop pair is what the
// transport serializes; traceID 0 (unsampled lineage) degrades to an inert
// span. Safe on a nil tracer.
func (t *Tracer) StartTraced(name string, traceID uint64, hop uint8) Span {
	if t == nil || traceID == 0 {
		return Span{}
	}
	// Forced spans count as started too, keeping started >= sampled. The
	// shared counter is fine here: this path already pays for a clock read
	// and a ring write, and only fires on sampled lineages.
	t.seq.Add(1)
	return Span{t: t, name: name, start: t.clk.Now(), traceID: traceID, hop: hop}
}

// traceIDBase seeds process-unique trace ids; the per-process counter keeps
// ids unique within a node, the mixing below spreads them across nodes.
var traceIDBase atomic.Uint64

// NewTraceID mints a non-zero trace id. Ids are sequence numbers passed
// through a splitmix64 finalizer, so concurrently minted ids from distinct
// tracers in one process never collide and ids from different processes
// collide only by 64-bit accident.
func NewTraceID() uint64 {
	for {
		x := traceIDBase.Add(0x9e3779b97f4a7c15)
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
		if x != 0 {
			return x
		}
	}
}

// RootSampler decides, per source call site, which emitted packets become
// trace roots. Unlike Op it is confined to the one goroutine running its
// source stage, so the per-packet counter needs no atomics; concurrent
// source stages each hold their own sampler and their independent
// 1-in-every cadences never share state. A nil *RootSampler (disabled
// tracer) never samples.
type RootSampler struct {
	t     *Tracer
	seq   uint64
	next  uint64 // seq value of the next sampled packet
	every uint64
}

// RootSampler returns a trace-root sampling handle on this tracer's
// cadence. The first packet through is sampled, then one in every
// SampleEvery.
func (t *Tracer) RootSampler() *RootSampler {
	if t == nil {
		return nil
	}
	return &RootSampler{t: t, every: t.every}
}

// Sample returns a fresh trace id for 1-in-every packets, or (0, false)
// between samples.
func (r *RootSampler) Sample() (uint64, bool) {
	if r == nil {
		return 0, false
	}
	n := r.seq
	r.seq++
	if n != r.next {
		return 0, false
	}
	r.next += r.every
	return NewTraceID(), true
}

// Counts returns how many spans were started (across Start and every Op)
// and how many were recorded.
func (t *Tracer) Counts() (started, sampled uint64) {
	if t == nil {
		return 0, 0
	}
	started = t.seq.Load()
	t.mu.Lock()
	ops := t.ops
	t.mu.Unlock()
	for _, op := range ops {
		started += op.seq.Load()
	}
	return started, t.sampled.Load()
}

// Spans returns the retained spans, oldest first.
func (t *Tracer) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, 0, t.count)
	start := t.next - t.count
	for i := 0; i < t.count; i++ {
		idx := (start + i + len(t.ring)) % len(t.ring)
		out = append(out, t.ring[idx])
	}
	return out
}

func (t *Tracer) record(r SpanRecord) {
	t.sampled.Add(1)
	t.mu.Lock()
	t.ring[t.next] = r
	t.next = (t.next + 1) % len(t.ring)
	if t.count < len(t.ring) {
		t.count++
	}
	t.mu.Unlock()
}

// SpanAttr is one numeric annotation on a span. Attributes are numeric on
// purpose: the hot path never formats strings for a span that may be
// thrown away.
type SpanAttr struct {
	Key   string  `json:"key"`
	Value float64 `json:"value"`
}

// SpanRecord is one completed, sampled span.
type SpanRecord struct {
	// Name identifies the operation (e.g. "stage.batch", "link.flush").
	Name string `json:"name"`
	// Start is the span's virtual start time.
	Start time.Time `json:"start"`
	// Duration is the span's virtual elapsed time.
	Duration time.Duration `json:"duration_ns"`
	// TraceID links spans of one sampled batch's journey across stages
	// and nodes; 0 for locally sampled spans outside any trace.
	TraceID uint64 `json:"trace_id,omitempty"`
	// Hop is the number of node crossings since the trace root at the
	// time the span ran.
	Hop uint8 `json:"hop,omitempty"`
	// Attrs are the annotations added during the span.
	Attrs []SpanAttr `json:"attrs,omitempty"`
}

// Span is one in-flight trace span. The zero value is inert.
type Span struct {
	t       *Tracer
	name    string
	start   time.Time
	traceID uint64
	hop     uint8
	attrs   []SpanAttr
}

// Sampled reports whether this span will be recorded. Use it to gate any
// extra work (building annotations, timing sub-steps) on the sampled path.
func (s *Span) Sampled() bool { return s.t != nil }

// Annotate attaches a numeric attribute; a no-op on inert spans.
func (s *Span) Annotate(key string, value float64) {
	if s.t == nil {
		return
	}
	s.attrs = append(s.attrs, SpanAttr{Key: key, Value: value})
}

// End completes the span and returns its virtual duration (zero for inert
// spans).
func (s *Span) End() time.Duration {
	if s.t == nil {
		return 0
	}
	d := s.t.clk.Now().Sub(s.start)
	s.t.record(SpanRecord{Name: s.name, Start: s.start, Duration: d,
		TraceID: s.traceID, Hop: s.hop, Attrs: s.attrs})
	s.t = nil
	return d
}
