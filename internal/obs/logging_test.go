package obs

import (
	"log/slog"
	"strings"
	"testing"
	"time"

	"github.com/gates-middleware/gates/internal/clock"
)

func TestLoggerStampsVirtualTime(t *testing.T) {
	clk := clock.NewManual()
	clk.AdvanceTo(time.Date(2004, 6, 8, 12, 0, 0, 0, time.UTC))
	var b strings.Builder
	log := NewLogger(&b, clk, nil)
	log.Info("stage started", "stage", "analyze")
	line := b.String()
	if !strings.Contains(line, "2004-06-08T12:00:00") {
		t.Fatalf("log line not stamped with virtual time: %q", line)
	}
	if !strings.Contains(line, "stage=analyze") || !strings.Contains(line, `msg="stage started"`) {
		t.Fatalf("log line missing attrs: %q", line)
	}
}

func TestLoggerWithAttrsKeepsClock(t *testing.T) {
	clk := clock.NewManual()
	clk.AdvanceTo(time.Date(2004, 6, 8, 0, 0, 0, 0, time.UTC))
	var b strings.Builder
	log := NewLogger(&b, clk, nil).With("node", "n1").WithGroup("adapt")
	clk.Advance(time.Hour)
	log.Info("adjusted", "deltaP", 0.5)
	line := b.String()
	if !strings.Contains(line, "2004-06-08T01:00:00") {
		t.Fatalf("derived logger lost the virtual clock: %q", line)
	}
	if !strings.Contains(line, "node=n1") || !strings.Contains(line, "adapt.deltaP=0.5") {
		t.Fatalf("derived logger lost attrs/groups: %q", line)
	}
}

func TestLoggerLevelFilter(t *testing.T) {
	var b strings.Builder
	log := NewLogger(&b, clock.NewManual(), slog.LevelWarn)
	log.Info("quiet")
	log.Warn("loud")
	out := b.String()
	if strings.Contains(out, "quiet") || !strings.Contains(out, "loud") {
		t.Fatalf("level filter wrong: %q", out)
	}
}

func TestNopLoggerDiscards(t *testing.T) {
	log := Nop()
	if log.Enabled(nil, slog.LevelError) {
		t.Fatal("nop logger claims to be enabled")
	}
	log.Error("goes nowhere") // must not panic
	log.With("k", "v").WithGroup("g").Info("still nowhere")
}
