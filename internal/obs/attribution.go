package obs

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/gates-middleware/gates/internal/clock"
)

// Backpressure metric names shared between the publishing side
// (internal/pipeline) and the attribution engine. Like the latency names in
// slo.go, they live here because obs is the layer both sides import.
const (
	// MetricQueuePushStall is the cumulative wall-clock seconds producers
	// spent parked pushing into a stage's input buffer — the inbound
	// backpressure signal. Wall seconds, not virtual: a parked goroutine
	// advances no virtual schedule.
	MetricQueuePushStall = "gates_queue_push_stall_seconds_total"
	// MetricQueuePopStall is the cumulative wall-clock seconds the
	// stage's drain loop spent parked on an empty input buffer — the
	// starvation signal.
	MetricQueuePopStall = "gates_queue_pop_stall_seconds_total"
	// MetricQueueDropped counts items rejected by TryPush on a full
	// input buffer.
	MetricQueueDropped = "gates_queue_dropped_total"
	// MetricQueueCapacity is the input buffer's capacity C.
	MetricQueueCapacity = "gates_queue_capacity"
	// MetricEmitStall is the cumulative wall-clock seconds a stage's emit
	// paths spent pushing into a downstream buffer that was full — the
	// outbound side of the same pressure MetricQueuePushStall charges to
	// the downstream queue.
	MetricEmitStall = "gates_stage_emit_stall_seconds_total"
	// MetricEdge is the topology gauge: one series per outbound edge,
	// labels {from, to}, constant value 1. The attribution engine walks
	// it to know each stage's downstream set.
	MetricEdge = "gates_stage_edge"
)

// DefaultBottleneckThreshold is the minimum inbound-minus-outbound stall
// fraction before a stage is named the bottleneck; below it the epoch is
// reported as unconstricted.
const DefaultBottleneckThreshold = 0.05

// StageVerdict is one stage instance's backpressure reading for an epoch.
// Fractions are of the wall-clock epoch, clamped to [0, 1].
type StageVerdict struct {
	Stage    string `json:"stage"`
	Instance string `json:"instance"`
	// InboundStallFrac is the fraction of the epoch producers spent
	// blocked pushing into this stage's input buffer: pressure arriving.
	InboundStallFrac JSONFloat `json:"inbound_stall_frac"`
	// EmitStallFrac is the fraction this stage spent blocked pushing
	// downstream: pressure passed along.
	EmitStallFrac JSONFloat `json:"emit_stall_frac"`
	// PopStallFrac is the fraction this stage's drain loop spent waiting
	// on an empty input buffer: starvation (downstream-of-a-bottleneck
	// signature).
	PopStallFrac JSONFloat `json:"pop_stall_frac"`
	// QueueFrac is the input buffer's occupancy over capacity at
	// collection time.
	QueueFrac JSONFloat `json:"queue_frac"`
	// DroppedDelta counts TryPush drops at this stage's input this epoch.
	DroppedDelta float64 `json:"dropped_delta,omitempty"`
	// Score is InboundStallFrac - EmitStallFrac: a true bottleneck
	// absorbs pressure without passing it on.
	Score JSONFloat `json:"score"`
	// Bottleneck marks the ranked winner; Reason explains it.
	Bottleneck bool   `json:"bottleneck,omitempty"`
	Reason     string `json:"reason,omitempty"`
}

// AttributionReport is one epoch's ranked backpressure verdict — the
// /bottlenecks document.
type AttributionReport struct {
	// At is the virtual time of the evaluation.
	At time.Time `json:"at"`
	// EpochWallSeconds is the wall-clock length of the epoch the
	// fractions are measured against.
	EpochWallSeconds JSONFloat `json:"epoch_wall_s"`
	// Bottleneck is "stage/instance" of the ranked winner, empty when no
	// stage clears the threshold.
	Bottleneck string `json:"bottleneck,omitempty"`
	// Summary is the one-line verdict ("stage X is the bottleneck: ...").
	Summary string `json:"summary"`
	// Verdicts lists every stage instance, highest score first.
	Verdicts []StageVerdict `json:"verdicts,omitempty"`
}

// stallCum is the cumulative counters remembered per stage instance so the
// next epoch can take deltas.
type stallCum struct {
	push, pop, emit, dropped float64
}

// Attribution turns the raw backpressure counters into a named culprit. The
// heuristic walks the deployed topology (the MetricEdge gauge) with one
// observation per stage instance and epoch:
//
//   - A stage whose inbound push-stall fraction is high is under pressure:
//     its producers spend the epoch parked on its full input buffer.
//   - If the same stage's own emit-stall fraction is also high, it is not
//     the culprit — it is merely relaying pressure from further downstream.
//   - The bottleneck is therefore the stage with the highest
//     inbound-minus-outbound stall fraction, confirmed by its downstream
//     neighbors sitting idle (high pop-stall fraction).
//
// Stall counters are wall-clock, so fractions are taken against a
// wall-clock epoch; nowNS is injectable for deterministic tests. Safe for
// concurrent use. A nil *Attribution is valid and reports nothing.
type Attribution struct {
	clk   clock.Clock
	nowNS func() int64

	mu       sync.Mutex
	minFrac  float64
	prev     map[string]stallCum
	prevWall int64
	primed   bool
	last     *AttributionReport
}

// NewAttribution returns an engine stamping reports with clk's virtual time.
// The first Observe measures from construction time.
func NewAttribution(clk clock.Clock) *Attribution {
	if clk == nil {
		panic("obs: NewAttribution requires a clock")
	}
	a := &Attribution{
		clk:     clk,
		nowNS:   func() int64 { return time.Now().UnixNano() },
		minFrac: DefaultBottleneckThreshold,
	}
	a.prevWall = a.nowNS()
	return a
}

// SetNowFunc replaces the wall-clock source (tests only) and restarts the
// current epoch at its reading.
func (a *Attribution) SetNowFunc(now func() int64) {
	a.mu.Lock()
	a.nowNS = now
	a.prevWall = now()
	a.prev = nil
	a.primed = false
	a.mu.Unlock()
}

// Last returns the most recent report, or an empty one before the first
// Observe. Nil-safe.
func (a *Attribution) Last() *AttributionReport {
	if a == nil {
		return &AttributionReport{Summary: "attribution not running"}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.last == nil {
		return &AttributionReport{Summary: "no epoch observed yet"}
	}
	return a.last
}

// ObserveRegistry runs one attribution epoch over reg's current snapshot.
func (a *Attribution) ObserveRegistry(reg *Registry) *AttributionReport {
	if a == nil || reg == nil {
		return (*Attribution)(nil).Last()
	}
	return a.Observe(reg.Snapshot())
}

// Observe runs one attribution epoch over a metric snapshot (node-local or
// cluster-merged) and returns the ranked verdict. The epoch is the wall
// time since the previous Observe (or construction).
func (a *Attribution) Observe(points []MetricPoint) *AttributionReport {
	if a == nil {
		return (*Attribution)(nil).Last()
	}
	a.mu.Lock()
	defer a.mu.Unlock()

	now := a.nowNS()
	epochNS := now - a.prevWall
	a.prevWall = now
	epochSec := float64(epochNS) / 1e9

	type accum struct {
		stallCum
		depth, cap float64
	}
	cur := make(map[string]*accum)
	var order []string
	downstream := make(map[string][]string)
	touch := func(key string) *accum {
		g, ok := cur[key]
		if !ok {
			g = &accum{}
			cur[key] = g
			order = append(order, key)
		}
		return g
	}
	for _, p := range points {
		if p.Name == MetricEdge {
			from, to := p.Labels["from"], p.Labels["to"]
			if from != "" && to != "" {
				downstream[from] = append(downstream[from], to)
			}
			continue
		}
		key := p.Labels["stage"] + "/" + p.Labels["instance"]
		v := float64(p.Value)
		switch p.Name {
		case MetricQueuePushStall:
			touch(key).push += v
		case MetricQueuePopStall:
			touch(key).pop += v
		case MetricEmitStall:
			touch(key).emit += v
		case MetricQueueDropped:
			touch(key).dropped += v
		case "gates_queue_depth":
			touch(key).depth += v
		case MetricQueueCapacity:
			touch(key).cap += v
		}
	}

	frac := func(deltaSec float64) float64 {
		if epochSec <= 0 {
			return 0
		}
		f := deltaSec / epochSec
		if f < 0 {
			f = 0
		}
		if f > 1 {
			f = 1
		}
		return f
	}

	// On the first epoch after construction (or a source reset) the
	// remembered cumulative counters are zero, so deltas equal totals —
	// exactly right for a one-shot evaluation over a finished run.
	prev := a.prev
	if prev == nil {
		prev = map[string]stallCum{}
	}
	next := make(map[string]stallCum, len(cur))
	verdicts := make([]StageVerdict, 0, len(cur))
	popFracByStage := make(map[string][]float64)
	for _, key := range order {
		g := cur[key]
		was := prev[key]
		next[key] = g.stallCum
		stage, instance := splitStageKey(key)
		v := StageVerdict{
			Stage:            stage,
			Instance:         instance,
			InboundStallFrac: JSONFloat(frac(g.push - was.push)),
			EmitStallFrac:    JSONFloat(frac(g.emit - was.emit)),
			PopStallFrac:     JSONFloat(frac(g.pop - was.pop)),
			DroppedDelta:     g.dropped - was.dropped,
		}
		if g.cap > 0 {
			v.QueueFrac = JSONFloat(g.depth / g.cap)
		}
		v.Score = v.InboundStallFrac - v.EmitStallFrac
		verdicts = append(verdicts, v)
		popFracByStage[stage] = append(popFracByStage[stage], float64(v.PopStallFrac))
	}
	a.prev = next
	a.primed = true

	sort.SliceStable(verdicts, func(i, j int) bool { return verdicts[i].Score > verdicts[j].Score })

	report := &AttributionReport{
		At:               a.clk.Now(),
		EpochWallSeconds: JSONFloat(epochSec),
		Summary:          "no bottleneck: no stage absorbs more pressure than it passes on",
		Verdicts:         verdicts,
	}
	if len(verdicts) > 0 && float64(verdicts[0].Score) >= a.minFrac {
		top := &verdicts[0]
		top.Bottleneck = true
		idle, nIdle := 0.0, 0
		for _, d := range downstream[top.Stage] {
			for _, f := range popFracByStage[d] {
				idle += f
				nIdle++
			}
		}
		reason := fmt.Sprintf("stage %s is the bottleneck: inbound ring full %d%% of epoch",
			top.Stage, pct(float64(top.InboundStallFrac)))
		if nIdle > 0 {
			reason += fmt.Sprintf(", downstream idle %d%%", pct(idle/float64(nIdle)))
		}
		top.Reason = reason
		report.Bottleneck = top.Stage + "/" + top.Instance
		report.Summary = reason
	}
	a.last = report
	return report
}

func pct(f float64) int { return int(f*100 + 0.5) }

// splitStageKey splits "stage/instance" back apart; the instance label may
// itself never contain a slash, the stage id may.
func splitStageKey(key string) (stage, instance string) {
	for i := len(key) - 1; i >= 0; i-- {
		if key[i] == '/' {
			return key[:i], key[i+1:]
		}
	}
	return key, ""
}
