package obs

import (
	"sort"
	"sync"
	"time"

	"github.com/gates-middleware/gates/internal/clock"
)

// Sampler fills a TSDB each control epoch from a metrics registry: per
// stage, the arrival/throughput counter-delta rates, queue depth, the
// wall-clock stall fraction, the utilization estimate ρ̂ = λ/μ read off
// the adaptation trail (counter-rate fallback when a stage publishes no
// adaptation epochs), the profiler's cumulative CPU attribution, and the
// pipeline-wide sink p99. It is also the TrendReader the autoscaler
// consumes (DESIGN.md §14). Safe for concurrent use: SampleNow serializes
// against itself and against readers.
type Sampler struct {
	clk  clock.Clock
	reg  *Registry
	db   *TSDB
	prof *Profiler   // nil = no CPU attribution
	aud  *AuditTrail // nil = counter-rate ρ̂ only

	mu       sync.Mutex
	src      SLOSource // nil = no SLO headroom
	prev     map[string]stageCum
	prevVirt time.Time
	prevWall time.Time
	primed   bool
	epochs   uint64
}

// stageCum is one stage's cumulative counters at the previous epoch.
type stageCum struct {
	in, out, stall float64
}

// NewSampler wires a sampler over reg into db. prof and aud may be nil.
func NewSampler(clk clock.Clock, reg *Registry, db *TSDB, prof *Profiler, aud *AuditTrail) *Sampler {
	if clk == nil {
		panic("obs: NewSampler requires a clock")
	}
	if reg == nil || db == nil {
		panic("obs: NewSampler requires a registry and a TSDB")
	}
	return &Sampler{clk: clk, reg: reg, db: db, prof: prof, aud: aud,
		prev: make(map[string]stageCum)}
}

// DB returns the store the sampler fills.
func (s *Sampler) DB() *TSDB { return s.db }

// SetSLOSource supplies the latency objective SLO headroom is computed
// against (a policy engine's SLO view). Nil leaves headroom unreported.
func (s *Sampler) SetSLOSource(src SLOSource) {
	s.mu.Lock()
	s.src = src
	s.mu.Unlock()
}

// Epochs returns how many sampling epochs have run.
func (s *Sampler) Epochs() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epochs
}

// stageAgg accumulates one stage's registry series across instances and
// nodes for one epoch.
type stageAgg struct {
	in, out, depth, stall float64
	dtilde                float64
	seen                  bool
}

// SampleNow takes one epoch: reads the registry, derives rates against
// the previous epoch, and appends one sample to every per-stage series.
// The binaries drive it from Run on the virtual clock; deterministic
// tests call it directly after advancing a manual clock.
func (s *Sampler) SampleNow() {
	now := s.clk.Now()
	wall := time.Now()
	points := s.reg.Snapshot()

	stages := make(map[string]*stageAgg)
	touch := func(stage string) *stageAgg {
		if stage == "" {
			return nil
		}
		a, ok := stages[stage]
		if !ok {
			a = &stageAgg{}
			stages[stage] = a
		}
		a.seen = true
		return a
	}
	for _, p := range points {
		stage := p.Labels["stage"]
		switch p.Name {
		case "gates_stage_items_in_total":
			if a := touch(stage); a != nil {
				a.in += float64(p.Value)
			}
		case "gates_stage_items_out_total":
			if a := touch(stage); a != nil {
				a.out += float64(p.Value)
			}
		case "gates_queue_depth":
			if a := touch(stage); a != nil {
				a.depth += float64(p.Value)
			}
		case MetricQueuePushStall:
			if a := touch(stage); a != nil {
				a.stall += float64(p.Value)
			}
		case MetricDTilde:
			if a := touch(stage); a != nil && float64(p.Value) > a.dtilde {
				a.dtilde = float64(p.Value)
			}
		}
	}

	var cpu map[string]float64
	if s.prof != nil {
		cpu = s.prof.CPUSeconds()
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	dtVirt := now.Sub(s.prevVirt).Seconds()
	dtWall := wall.Sub(s.prevWall).Seconds()

	names := make([]string, 0, len(stages))
	for name := range stages {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		a := stages[name]
		s.db.Series(name, TSDepth).Add(now, a.depth)
		s.db.Series(name, TSDTilde).Add(now, a.dtilde)
		prev, had := s.prev[name]
		if s.primed && had && dtVirt > 0 {
			lambda := counterRate(a.in, prev.in, dtVirt)
			mu := counterRate(a.out, prev.out, dtVirt)
			s.db.Series(name, TSArrival).Add(now, lambda)
			s.db.Series(name, TSThroughput).Add(now, mu)
			s.db.Series(name, TSUtilization).Add(now, s.rho(name, now, lambda, mu))
			if dtWall > 0 {
				f := counterRate(a.stall, prev.stall, dtWall)
				if f > 1 {
					f = 1
				}
				s.db.Series(name, TSStallFrac).Add(now, f)
			}
		}
		s.prev[name] = stageCum{in: a.in, out: a.out, stall: a.stall}
	}
	for name, secs := range cpu {
		if name == "" {
			continue
		}
		s.db.Series(name, TSCPUSeconds).Add(now, secs)
	}
	if p99 := SinkP99(points); p99 > 0 {
		s.db.Series("", TSSinkP99).Add(now, p99)
	}
	s.prevVirt, s.prevWall = now, wall
	s.primed = true
	s.epochs++
}

// counterRate is a monotone counter's per-second rate over dt; a counter
// that moved backwards (instance restart) contributes its post-reset
// value.
func counterRate(cur, prev, dt float64) float64 {
	d := cur - prev
	if d < 0 {
		d = cur
	}
	return d / dt
}

// rho resolves the utilization estimate for one stage at one epoch: the
// latest adaptation event's λ/μ when the controller produced one recently
// (within the trend window), else the sampler's own counter rates. Caller
// holds s.mu.
func (s *Sampler) rho(stage string, now time.Time, lambda, mu float64) float64 {
	if s.aud != nil {
		if ev, ok := latestFor(s.aud, stage); ok && ev.Mu > 0 &&
			now.Sub(ev.At) <= time.Duration(trendEpochs)*s.db.Epoch() {
			return clampRho(ev.Lambda / ev.Mu)
		}
	}
	if mu > 0 {
		return clampRho(lambda / mu)
	}
	if lambda > 0 {
		return rhoCeil // arrivals with zero departures: saturated
	}
	return 0
}

// rhoCeil bounds the reported utilization estimate; beyond a few, "how
// overloaded" carries no extra signal and one division by a tiny μ would
// wreck every chart scale.
const rhoCeil = 8.0

func clampRho(r float64) float64 {
	if r > rhoCeil {
		return rhoCeil
	}
	if r < 0 {
		return 0
	}
	return r
}

// latestFor returns the most recent adaptation event of any instance of
// stage.
func latestFor(aud *AuditTrail, stage string) (AdaptationEvent, bool) {
	var best AdaptationEvent
	found := false
	for _, ev := range aud.Events() {
		if ev.Stage == stage && (!found || ev.Seq > best.Seq) {
			best, found = ev, true
		}
	}
	return best, found
}

// Run samples every TSDB epoch of virtual time until stop is closed.
func (s *Sampler) Run(stop <-chan struct{}) {
	for {
		select {
		case <-stop:
			return
		case <-s.clk.After(s.db.Epoch()):
			s.SampleNow()
		}
	}
}

// StageTrend is one stage's windowed trend summary — the per-stage row of
// the autoscaler contract (DESIGN.md §14).
type StageTrend struct {
	// Stage names the stage; Node is filled by the cluster aggregator.
	Stage string `json:"stage"`
	Node  string `json:"node,omitempty"`
	// Epochs is how many samples the depth series holds in the trend
	// window (slopes over fewer than 2 are zero).
	Epochs int `json:"epochs"`
	// Arrival (λ) and Throughput (μ̂) are the last epoch's rates,
	// items per virtual second.
	Arrival    float64 `json:"arrival"`
	Throughput float64 `json:"throughput"`
	// Depth is the last sampled queue occupancy and BacklogSlope its
	// least-squares trend in items per virtual second over the window;
	// BacklogRising flags a persistently growing backlog (positive
	// slope and a net depth increase across the window).
	Depth         float64 `json:"depth"`
	BacklogSlope  float64 `json:"backlog_slope"`
	BacklogRising bool    `json:"backlog_rising"`
	// Utilization is the last ρ̂ sample and UtilizationSlope its trend
	// per virtual second.
	Utilization      float64 `json:"utilization"`
	UtilizationSlope float64 `json:"utilization_slope"`
	// StallFrac is the last epoch's inbound-backpressure fraction.
	StallFrac float64 `json:"stall_frac"`
	// CPUSeconds is the cumulative profiler-attributed CPU and CPURate
	// the fraction of one core burned over the trend window (wall
	// clock, like the profiler's sampling).
	CPUSeconds float64 `json:"cpu_seconds"`
	CPURate    float64 `json:"cpu_rate"`
	// DepthSpark is the depth series tail feeding dashboard sparklines.
	DepthSpark []float64 `json:"depth_spark,omitempty"`
}

// TrendSummary is the TrendReader's full answer: per-stage trends plus
// the pipeline-level SLO headroom.
type TrendSummary struct {
	// At is the virtual time of the summary.
	At time.Time `json:"at"`
	// Epochs is how many sampling epochs have run.
	Epochs uint64 `json:"epochs"`
	// SinkP99 is the last sampled sink-side e2e p99 (virtual seconds)
	// and TargetP99 the active objective (0 = none configured).
	SinkP99   JSONFloat `json:"sink_p99"`
	TargetP99 JSONFloat `json:"target_p99,omitempty"`
	// SLOHeadroom is (TargetP99 − SinkP99) / TargetP99: 1 = idle, 0 =
	// at the objective, negative = violating. NaN (omitted in JSON)
	// without a target.
	SLOHeadroom JSONFloat `json:"slo_headroom,omitempty"`
	// Stages is one trend row per stage, sorted by name.
	Stages []StageTrend `json:"stages"`
}

// TrendReader is the typed trend surface the autoscaler consumes: who is
// saturated (Utilization), who is structurally behind (BacklogRising),
// and how much slack the latency objective has left (SLOHeadroom).
type TrendReader interface {
	Trends() TrendSummary
}

// Trends assembles the current trend summary from the store.
func (s *Sampler) Trends() TrendSummary {
	now := s.clk.Now()
	s.mu.Lock()
	src := s.src
	epochs := s.epochs
	s.mu.Unlock()

	sum := TrendSummary{At: now, Epochs: epochs}
	if p99, ok := s.db.Series("", TSSinkP99).Last(); ok {
		sum.SinkP99 = JSONFloat(p99.V)
	}
	if src != nil {
		cfg, _ := src()
		if cfg.TargetP99 > 0 {
			sum.TargetP99 = JSONFloat(cfg.TargetP99)
			sum.SLOHeadroom = JSONFloat((cfg.TargetP99 - float64(sum.SinkP99)) / cfg.TargetP99)
		}
	}
	var cpuRates map[string]float64
	if s.prof != nil {
		cpuRates = s.prof.CPURates()
	}
	for _, stage := range s.db.Stages() {
		t := StageTrend{Stage: stage, CPURate: cpuRates[stage]}
		depth := s.db.Series(stage, TSDepth)
		t.Epochs = depth.Len()
		if t.Epochs > trendEpochs {
			t.Epochs = trendEpochs
		}
		if last, ok := depth.Last(); ok {
			t.Depth = last.V
		}
		t.BacklogSlope = depth.SlopeLastN(trendEpochs)
		t.BacklogRising = t.BacklogSlope > 0 && depth.DeltaLastN(trendEpochs) > 0
		t.DepthSpark = depth.LastN(trendEpochs)
		if last, ok := s.db.Series(stage, TSArrival).Last(); ok {
			t.Arrival = last.V
		}
		if last, ok := s.db.Series(stage, TSThroughput).Last(); ok {
			t.Throughput = last.V
		}
		util := s.db.Series(stage, TSUtilization)
		if last, ok := util.Last(); ok {
			t.Utilization = last.V
		}
		t.UtilizationSlope = util.SlopeLastN(trendEpochs)
		if last, ok := s.db.Series(stage, TSStallFrac).Last(); ok {
			t.StallFrac = last.V
		}
		if last, ok := s.db.Series(stage, TSCPUSeconds).Last(); ok {
			t.CPUSeconds = last.V
		}
		sum.Stages = append(sum.Stages, t)
	}
	return sum
}

// TSDump is the /timeseries JSON document: the retained windowed series
// plus the trend summary derived from them.
type TSDump struct {
	// At is the virtual time of the dump.
	At time.Time `json:"at"`
	// EpochSeconds is the sampling interval in virtual seconds and
	// Epochs how many sampling epochs have run.
	EpochSeconds float64 `json:"epoch_seconds"`
	Epochs       uint64  `json:"epochs"`
	// Trends is the TrendReader view over the same window.
	Trends *TrendSummary `json:"trends,omitempty"`
	// Series is every retained series, oldest sample first.
	Series []SeriesDump `json:"series"`
}

// Dump renders the sampler's store for /timeseries, filtered to a
// trailing window (0 = full retention) and one stage ("" = all).
func (s *Sampler) Dump(window time.Duration, stage string) TSDump {
	now := s.clk.Now()
	trends := s.Trends()
	return TSDump{
		At:           now,
		EpochSeconds: s.db.Epoch().Seconds(),
		Epochs:       trends.Epochs,
		Trends:       &trends,
		Series:       s.db.Dump(now, window, stage),
	}
}
