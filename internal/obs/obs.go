// Package obs is the unified observability layer of the middleware: a
// metrics registry with Prometheus-text and JSON exposition, structured
// logging on the virtual clock, sampled trace spans for the hot data path,
// and an audit trail that explains every self-adaptation decision.
//
// The paper's §1 premise is that the middleware "monitors the arrival rate
// at each source, the available computing resources and memory, and the
// available network bandwidth". This package turns that observation surface
// into first-class infrastructure: every layer (pipeline stages, queues,
// netsim links, transport endpoints, the adaptation controller) publishes
// into one Registry, and operators consume it over HTTP (/metrics,
// /snapshot, /adaptations) or through internal/monitor, which reads the
// same registry instead of scraping components directly.
//
// All timestamps and durations are virtual time (clock.Clock), so metrics
// and traces from a 500x-compressed experiment read exactly like a
// real-time run.
package obs

import (
	"context"
	"io"
	"log/slog"
	"os"
	"runtime/pprof"
	"strconv"
	"sync"
	"time"

	"github.com/gates-middleware/gates/internal/clock"
)

// TraceSampleEnv is the environment variable consulted for the default
// trace-sampling period when a binary's -trace-sample flag is left at its
// default. The value is the user-facing N of "record one trace in every N
// hot-path operations"; 0 disables tracing.
const TraceSampleEnv = "GATES_TRACE_SAMPLE"

// DefaultTraceSample returns the user-facing trace-sampling default: the
// value of GATES_TRACE_SAMPLE when it parses as a non-negative integer,
// otherwise DefaultSampleEvery. The result uses flag semantics (0 =
// disabled); feed it through SampleEveryFor before storing into
// Config.SampleEvery.
func DefaultTraceSample() int {
	if v := os.Getenv(TraceSampleEnv); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n >= 0 {
			return n
		}
	}
	return DefaultSampleEvery
}

// SampleEveryFor maps a user-facing -trace-sample value (N > 0 records one
// in every N operations, 0 disables tracing) onto Config.SampleEvery
// semantics, where zero means "default" and negative means "disabled".
func SampleEveryFor(n int) int {
	if n <= 0 {
		return -1
	}
	return n
}

// Config tunes an Observability bundle. The zero value selects defaults:
// 1-in-DefaultSampleEvery trace sampling, DefaultTraceCapacity retained
// spans, DefaultAuditCapacity retained adaptation events, and a discarded
// log stream.
type Config struct {
	// SampleEvery traces one in every this many spans. Zero selects
	// DefaultSampleEvery; negative disables tracing entirely.
	SampleEvery int
	// TraceCapacity bounds the retained span ring. Zero selects
	// DefaultTraceCapacity.
	TraceCapacity int
	// AuditCapacity bounds the retained adaptation-event ring. Zero
	// selects DefaultAuditCapacity.
	AuditCapacity int
	// MigrationCapacity bounds the retained migration-event ring. Zero
	// selects DefaultMigrationCapacity.
	MigrationCapacity int
	// LifecycleCapacity bounds the retained lifecycle-transition ring.
	// Zero selects DefaultLifecycleCapacity.
	LifecycleCapacity int
	// FlightCapacity bounds the retained flight-recorder ring (the
	// -flight-recorder-size flag). Zero selects DefaultFlightCapacity.
	FlightCapacity int
	// DecisionCapacity bounds the retained decision-log ring. Zero
	// selects DefaultDecisionCapacity.
	DecisionCapacity int
	// TimeseriesEpoch is the virtual interval between time-series
	// samples. Zero selects DefaultTimeseriesEpoch.
	TimeseriesEpoch time.Duration
	// TimeseriesWindow is the virtual time of per-series history the
	// /timeseries plane retains (the -timeseries-window flag). Zero
	// selects DefaultTimeseriesWindow.
	TimeseriesWindow time.Duration
	// ProfileEvery is the wall-clock period between per-stage CPU
	// profile rounds (the -profile-every flag). Zero selects
	// DefaultProfileEvery; negative disables CPU attribution.
	ProfileEvery time.Duration
	// LogWriter receives structured log lines. Nil discards them.
	LogWriter io.Writer
	// LogLevel is the minimum level emitted. Nil means slog.LevelInfo.
	LogLevel slog.Leveler
}

// Observability bundles the four observation facilities every layer wires
// against. A nil *Observability is valid everywhere in the middleware and
// means "not observed"; use the accessor methods, which are nil-safe.
type Observability struct {
	// Clock is the time base all timestamps and durations use.
	Clock clock.Clock
	// Registry holds every published metric.
	Registry *Registry
	// Tracer samples spans on the hot data path.
	Tracer *Tracer
	// Audit records every adaptation decision.
	Audit *AuditTrail
	// Migrations records every live re-deployment of a stage instance.
	Migrations *MigrationTrail
	// Lifecycle records every stage lifecycle transition.
	Lifecycle *LifecycleTrail
	// Flight is the always-on flight recorder behind /flightrecorder.
	Flight *FlightRecorder
	// Decisions is the bounded control-plane decision log behind
	// /decisions: every placement, rebalance verdict, SLO evaluation, and
	// policy load, with its input context and policy version.
	Decisions *DecisionTrail
	// Attribution is the backpressure-attribution engine behind
	// /bottlenecks, evaluated lazily over this bundle's registry.
	Attribution *Attribution
	// Timeseries is the bounded windowed store behind /timeseries.
	Timeseries *TSDB
	// Sampler fills Timeseries each control epoch and is the bundle's
	// TrendReader (the autoscaler contract, DESIGN.md §14).
	Sampler *Sampler
	// Profiler attributes CPU to stages via goroutine pprof labels;
	// nil when Config.ProfileEvery is negative.
	Profiler *Profiler
	// Logger is the structured log stream (never nil after New).
	Logger *slog.Logger
}

// New returns a fully wired bundle on clk. The tracer's span counters are
// pre-registered in the registry, so exposition always carries
// gates_trace_spans_started_total / gates_trace_spans_sampled_total.
func New(clk clock.Clock, cfg Config) *Observability {
	if clk == nil {
		panic("obs: New requires a clock")
	}
	reg := NewRegistry(clk)
	var tr *Tracer
	if cfg.SampleEvery >= 0 {
		tr = NewTracer(clk, cfg.SampleEvery, cfg.TraceCapacity)
		reg.CounterFunc("gates_trace_spans_started_total",
			"Spans started on the hot path (sampled or not).", nil,
			func() float64 { s, _ := tr.Counts(); return float64(s) })
		reg.CounterFunc("gates_trace_spans_sampled_total",
			"Spans actually recorded.", nil,
			func() float64 { _, s := tr.Counts(); return float64(s) })
	}
	logger := Nop()
	if cfg.LogWriter != nil {
		logger = NewLogger(cfg.LogWriter, clk, cfg.LogLevel)
	}
	audit := NewAuditTrail(cfg.AuditCapacity)
	db := NewTSDB(cfg.TimeseriesEpoch, cfg.TimeseriesWindow)
	var prof *Profiler
	if cfg.ProfileEvery >= 0 {
		prof = NewProfiler(cfg.ProfileEvery)
		prof.SetRegistry(reg)
	}
	return &Observability{
		Clock:       clk,
		Registry:    reg,
		Tracer:      tr,
		Audit:       audit,
		Migrations:  NewMigrationTrail(cfg.MigrationCapacity),
		Lifecycle:   NewLifecycleTrail(cfg.LifecycleCapacity),
		Flight:      NewFlightRecorder(clk, cfg.FlightCapacity),
		Decisions:   NewDecisionTrail(clk, cfg.DecisionCapacity),
		Attribution: NewAttribution(clk),
		Timeseries:  db,
		Sampler:     NewSampler(clk, reg, db, prof, audit),
		Profiler:    prof,
		Logger:      logger,
	}
}

// StartTimeseries launches the bundle's time-series plane: the sampler on
// its virtual epoch and the CPU profiler on its wall period. The returned
// stop function ends both; calling it on a bundle without the plane (or
// twice) is harmless.
func (o *Observability) StartTimeseries() (stop func()) {
	if o == nil || o.Sampler == nil {
		return func() {}
	}
	stopCh := make(chan struct{})
	go func() {
		// The sampler's own CPU folds into the control-plane bucket.
		pprof.SetGoroutineLabels(pprof.WithLabels(context.Background(),
			pprof.Labels("stage", "control-plane")))
		o.Sampler.Run(stopCh)
	}()
	o.Profiler.Start()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(stopCh)
			o.Profiler.Stop()
		})
	}
}

// Trends returns the bundle's trend summary, nil-safe: an unobserved or
// plane-less bundle answers the zero summary.
func (o *Observability) Trends() TrendSummary {
	if o == nil || o.Sampler == nil {
		return TrendSummary{}
	}
	return o.Sampler.Trends()
}

// Log returns the bundle's logger, or a no-op logger when the bundle (or
// its logger) is nil — callers never need a nil check.
func (o *Observability) Log() *slog.Logger {
	if o == nil || o.Logger == nil {
		return Nop()
	}
	return o.Logger
}

// Reg returns the bundle's registry, or nil when unobserved.
func (o *Observability) Reg() *Registry {
	if o == nil {
		return nil
	}
	return o.Registry
}

// Trace returns the bundle's tracer, or nil when unobserved. A nil *Tracer
// is itself safe to Start spans on.
func (o *Observability) Trace() *Tracer {
	if o == nil {
		return nil
	}
	return o.Tracer
}

// Trail returns the bundle's audit trail, or nil when unobserved. A nil
// *AuditTrail is itself safe to Record into.
func (o *Observability) Trail() *AuditTrail {
	if o == nil {
		return nil
	}
	return o.Audit
}

// MigrationTrail returns the bundle's migration trail, or nil when
// unobserved. A nil *MigrationTrail is itself safe to Record into.
func (o *Observability) MigrationTrail() *MigrationTrail {
	if o == nil {
		return nil
	}
	return o.Migrations
}

// LifecycleTrail returns the bundle's lifecycle trail, or nil when
// unobserved. A nil *LifecycleTrail is itself safe to Record into.
func (o *Observability) LifecycleTrail() *LifecycleTrail {
	if o == nil {
		return nil
	}
	return o.Lifecycle
}

// FlightRec returns the bundle's flight recorder, or nil when unobserved. A
// nil *FlightRecorder is itself safe to Record into.
func (o *Observability) FlightRec() *FlightRecorder {
	if o == nil {
		return nil
	}
	return o.Flight
}

// Attr returns the bundle's attribution engine, or nil when unobserved. A
// nil *Attribution is itself safe to Observe with.
func (o *Observability) Attr() *Attribution {
	if o == nil {
		return nil
	}
	return o.Attribution
}

// DecisionLog returns the bundle's decision log, or nil when unobserved. A
// nil *DecisionTrail is itself safe to Record into.
func (o *Observability) DecisionLog() *DecisionTrail {
	if o == nil {
		return nil
	}
	return o.Decisions
}
