package obs

import "math"

// LatencyBuckets is the log-spaced (HDR-style) bucketing used by the
// end-to-end latency histograms: latencyBucketsPerDecade bounds per decade
// from 10µs to 1000s of virtual time. The growth factor between adjacent
// bounds is 10^(1/16) ≈ 1.155, so a quantile interpolated inside one bucket
// is within ~±8% of the true value — comfortably inside the ±20% the
// acceptance tests allow — while the whole histogram stays a fixed array of
// latencyBucketCount atomic counters.
var LatencyBuckets = makeLatencyBuckets()

const (
	latencyBucketsPerDecade = 16
	latencyMinExp           = -5 // 10µs
	latencyMaxExp           = 3  // 1000s
)

func makeLatencyBuckets() []float64 {
	n := (latencyMaxExp - latencyMinExp) * latencyBucketsPerDecade
	out := make([]float64, 0, n+1)
	for i := 0; i <= n; i++ {
		exp := float64(latencyMinExp) + float64(i)/latencyBucketsPerDecade
		out = append(out, math.Pow(10, exp))
	}
	return out
}

// Quantile estimates the q-quantile (0 < q <= 1) of the observations, by
// linear interpolation inside the bucket holding the target rank. It
// returns 0 when the histogram is empty. Values in the +Inf overflow bucket
// clamp to the largest finite bound — percentiles cannot exceed what the
// bucketing can represent.
func (h *Histogram) Quantile(q float64) float64 {
	_, count, buckets := h.State()
	return QuantileFromBuckets(buckets, count, q)
}

// QuantileFromBuckets estimates the q-quantile from cumulative buckets, as
// produced by Histogram.State or carried in a MetricPoint — this is the
// form the cluster aggregator works in after merging node snapshots.
func QuantileFromBuckets(buckets []BucketCount, count uint64, q float64) float64 {
	if count == 0 || len(buckets) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(count)
	if rank < 1 {
		rank = 1
	}
	var prevBound float64
	var prevCount uint64
	for i, b := range buckets {
		bound := float64(b.UpperBound)
		if float64(b.Count) >= rank {
			if math.IsInf(bound, +1) {
				// Overflow bucket: clamp to the last finite bound.
				if i > 0 {
					return float64(buckets[i-1].UpperBound)
				}
				return 0
			}
			inBucket := b.Count - prevCount
			if inBucket == 0 {
				return bound
			}
			frac := (rank - float64(prevCount)) / float64(inBucket)
			return prevBound + (bound-prevBound)*frac
		}
		prevBound, prevCount = bound, b.Count
	}
	return prevBound
}

// Bounds returns the histogram's finite upper bounds (the +Inf overflow
// bucket is implicit). The slice is the histogram's own: do not mutate.
func (h *Histogram) Bounds() []float64 { return h.bounds }

// HistogramQuantile evaluates the q-quantile of one histogram series, or
// false when the series does not exist or is not a histogram — the lookup
// internal/monitor uses to put percentile columns on dashboards.
func (r *Registry) HistogramQuantile(name string, labels map[string]string, q float64) (float64, bool) {
	r.mu.RLock()
	f, ok := r.families[name]
	r.mu.RUnlock()
	if !ok || f.kind != KindHistogram {
		return 0, false
	}
	key, _ := canonical(labels)
	f.mu.Lock()
	s, ok := f.series[key]
	f.mu.Unlock()
	if !ok || s.hist == nil {
		return 0, false
	}
	return s.hist.Quantile(q), true
}

// quantilePoints are the percentiles exposition attaches to histograms.
var quantilePoints = []struct {
	Key string
	Q   float64
}{{"p50", 0.50}, {"p95", 0.95}, {"p99", 0.99}}

// mergeBuckets adds src's cumulative counts into dst. Both must share the
// same bounds; it returns false on misalignment (different length or
// bounds), which callers surface as a merge error rather than silently
// producing a wrong distribution.
func mergeBuckets(dst, src []BucketCount) bool {
	if len(dst) != len(src) {
		return false
	}
	for i := range dst {
		db, sb := float64(dst[i].UpperBound), float64(src[i].UpperBound)
		if db != sb && !(math.IsInf(db, +1) && math.IsInf(sb, +1)) {
			return false
		}
	}
	for i := range dst {
		dst[i].Count += src[i].Count
	}
	return true
}
