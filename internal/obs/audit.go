package obs

import (
	"sync"
	"time"
)

// DefaultAuditCapacity is the default retained-event ring size.
const DefaultAuditCapacity = 1024

// ParamDelta is one parameter's move within an adaptation event.
type ParamDelta struct {
	Param string  `json:"param"`
	Old   float64 `json:"old"`
	New   float64 `json:"new"`
}

// AdaptationEvent records one Controller.Adjust epoch: the observation that
// drove it (queue length d, long-term factor d̃, measured λ/μ, the
// downstream exception counts T1/T2 consumed by this epoch) and the
// resulting canonical ΔP with every parameter's move. The trail makes the
// Figure 8/9 convergence traces explainable: for any parameter step, the
// event shows exactly which pressure (own queue vs. downstream exceptions)
// produced it.
type AdaptationEvent struct {
	// Seq numbers events in record order across the whole trail.
	Seq uint64 `json:"seq"`
	// At is the virtual time of the adjustment.
	At time.Time `json:"at"`
	// Stage, Instance, Node identify the adjusting server.
	Stage    string `json:"stage"`
	Instance int    `json:"instance"`
	Node     string `json:"node,omitempty"`
	// QueueLen is the input-queue occupancy d at adjustment time.
	QueueLen int `json:"queue_len"`
	// DTilde is the long-term average queue size factor d̃.
	DTilde float64 `json:"d_tilde"`
	// Lambda and Mu are the arrival and service rates (items per virtual
	// second) measured since the previous adjustment epoch; zero on the
	// first.
	Lambda float64 `json:"lambda"`
	Mu     float64 `json:"mu"`
	// T1 and T2 are the downstream overload/underload exception counts
	// consumed (and reset) by this epoch.
	T1 float64 `json:"t1"`
	T2 float64 `json:"t2"`
	// DeltaP is the canonical ΔP applied (before Step/Direction scaling).
	DeltaP float64 `json:"delta_p"`
	// Params are the individual parameter moves (empty when the stage
	// registered no adjustment parameters).
	Params []ParamDelta `json:"params,omitempty"`
}

// AuditTrail is a bounded ring of adaptation events, safe for concurrent
// use. A nil *AuditTrail is valid and records nothing.
type AuditTrail struct {
	mu    sync.Mutex
	ring  []AdaptationEvent
	next  int
	count int
	total uint64
}

// NewAuditTrail returns a trail retaining up to capacity events (<=0
// selects DefaultAuditCapacity).
func NewAuditTrail(capacity int) *AuditTrail {
	if capacity <= 0 {
		capacity = DefaultAuditCapacity
	}
	return &AuditTrail{ring: make([]AdaptationEvent, capacity)}
}

// Record appends ev, stamping its Seq. A no-op on a nil trail.
func (a *AuditTrail) Record(ev AdaptationEvent) {
	if a == nil {
		return
	}
	a.mu.Lock()
	ev.Seq = a.total
	a.total++
	a.ring[a.next] = ev
	a.next = (a.next + 1) % len(a.ring)
	if a.count < len(a.ring) {
		a.count++
	}
	a.mu.Unlock()
}

// Total returns how many events were ever recorded (retained or evicted).
func (a *AuditTrail) Total() uint64 {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.total
}

// Events returns the retained events, oldest first.
func (a *AuditTrail) Events() []AdaptationEvent {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]AdaptationEvent, 0, a.count)
	start := a.next - a.count
	for i := 0; i < a.count; i++ {
		idx := (start + i + len(a.ring)) % len(a.ring)
		out = append(out, a.ring[idx])
	}
	return out
}

// Last returns the most recent event, or false when the trail is empty.
func (a *AuditTrail) Last() (AdaptationEvent, bool) {
	if a == nil {
		return AdaptationEvent{}, false
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.count == 0 {
		return AdaptationEvent{}, false
	}
	idx := (a.next - 1 + len(a.ring)) % len(a.ring)
	return a.ring[idx], true
}

// ForStage returns the retained events of one stage instance, oldest
// first — the per-server convergence trace.
func (a *AuditTrail) ForStage(stage string, instance int) []AdaptationEvent {
	var out []AdaptationEvent
	for _, ev := range a.Events() {
		if ev.Stage == stage && ev.Instance == instance {
			out = append(out, ev)
		}
	}
	return out
}
