package obs

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"runtime/pprof"
	"sync"
	"time"
)

// Profiler is the per-stage CPU attribution engine: it periodically takes
// a short CPU profile of the whole process, folds the samples by their
// "stage" goroutine label (pprof.Do around every stage worker, source,
// and transport loop), and accumulates cumulative per-stage CPU seconds —
// published as gates_stage_cpu_seconds_total and fed into the time-series
// plane. Samples from unlabeled goroutines (runtime, HTTP handlers, the
// profiler itself) accumulate under the "" key, kept internal: the
// metric answers "which stage is burning the node", not "what is the
// process doing".
//
// Profiling runs on the wall clock — CPU burn is a wall phenomenon — with
// a duty cycle set by the sampling period: each round profiles for half
// the period (clamped to [50ms, 1s]). StartCPUProfile is process-global,
// so a round quietly skips when another profile (e.g. /debug/pprof/profile)
// is active, and the skip is counted.
type Profiler struct {
	every  time.Duration
	window time.Duration

	mu      sync.Mutex
	reg     *Registry // lazily registers per-stage counter series
	cum     map[string]float64
	rate    map[string]float64 // EWMA cores-burned per stage
	rounds  uint64
	skips   uint64
	lastErr string
	stop    chan struct{}
	done    chan struct{}
}

// DefaultProfileEvery is the default wall-clock period between CPU
// profile rounds (the -profile-every flag).
const DefaultProfileEvery = 2 * time.Second

// rateAlpha is the EWMA weight of the newest round in the per-stage CPU
// rate estimate.
const rateAlpha = 0.5

// NewProfiler returns a profiler sampling every period (<= 0 selects
// DefaultProfileEvery). It is idle until Start.
func NewProfiler(every time.Duration) *Profiler {
	if every <= 0 {
		every = DefaultProfileEvery
	}
	window := every / 2
	if window < 50*time.Millisecond {
		window = 50 * time.Millisecond
	}
	if window > time.Second {
		window = time.Second
	}
	if window > every {
		window = every
	}
	return &Profiler{
		every:  every,
		window: window,
		cum:    make(map[string]float64),
		rate:   make(map[string]float64),
	}
}

// SetRegistry makes the profiler publish gates_stage_cpu_seconds_total
// into reg, one series per stage label as stages appear in profiles.
func (p *Profiler) SetRegistry(reg *Registry) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.reg = reg
	p.mu.Unlock()
	if reg == nil {
		return
	}
	reg.CounterFunc("gates_profiler_rounds_total",
		"Completed CPU profile rounds folded into per-stage attribution.", nil,
		func() float64 { p.mu.Lock(); defer p.mu.Unlock(); return float64(p.rounds) })
	reg.CounterFunc("gates_profiler_skips_total",
		"Profile rounds skipped because another CPU profile was active.", nil,
		func() float64 { p.mu.Lock(); defer p.mu.Unlock(); return float64(p.skips) })
}

// Start launches the background sampling loop. A second Start is a no-op
// until Stop.
func (p *Profiler) Start() {
	if p == nil {
		return
	}
	p.mu.Lock()
	if p.stop != nil {
		p.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	p.stop, p.done = stop, done
	p.mu.Unlock()
	go func() {
		defer close(done)
		t := time.NewTicker(p.every)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				p.SampleOnce()
			}
		}
	}()
}

// Stop ends the sampling loop and waits for it.
func (p *Profiler) Stop() {
	if p == nil {
		return
	}
	p.mu.Lock()
	stop, done := p.stop, p.done
	p.stop, p.done = nil, nil
	p.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// SampleOnce takes one profile round synchronously: profile for the
// window, fold by stage label, accumulate. It returns the error of a
// skipped round (another profile active) after counting it.
func (p *Profiler) SampleOnce() error {
	if p == nil {
		return nil
	}
	var buf bytes.Buffer
	if err := pprof.StartCPUProfile(&buf); err != nil {
		p.mu.Lock()
		p.skips++
		p.lastErr = err.Error()
		p.mu.Unlock()
		return err
	}
	time.Sleep(p.window)
	pprof.StopCPUProfile()
	byStage, err := foldCPUProfile(buf.Bytes())
	if err != nil {
		p.mu.Lock()
		p.lastErr = err.Error()
		p.mu.Unlock()
		return err
	}
	p.fold(byStage, p.window.Seconds())
	return nil
}

// fold accumulates one round's per-stage CPU nanoseconds and refreshes
// the EWMA rates against the profiled wall window.
func (p *Profiler) fold(byStage map[string]int64, wallSec float64) {
	p.mu.Lock()
	var newStages []string
	for stage, ns := range byStage {
		if _, seen := p.cum[stage]; !seen && stage != "" {
			newStages = append(newStages, stage)
		}
		p.cum[stage] += float64(ns) * 1e-9
	}
	if wallSec > 0 {
		// Stages absent from this round decay toward zero; present ones
		// blend in their cores-burned share of the profiled window.
		for stage := range p.rate {
			p.rate[stage] *= 1 - rateAlpha
		}
		for stage, ns := range byStage {
			p.rate[stage] += rateAlpha * (float64(ns) * 1e-9 / wallSec)
		}
	}
	p.rounds++
	p.lastErr = ""
	reg := p.reg
	p.mu.Unlock()
	if reg != nil {
		for _, stage := range newStages {
			stage := stage
			reg.CounterFunc("gates_stage_cpu_seconds_total",
				"CPU seconds attributed to this stage's labeled goroutines by the sampling profiler.",
				map[string]string{"stage": stage},
				func() float64 { return p.cpuFor(stage) })
		}
	}
}

func (p *Profiler) cpuFor(stage string) float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cum[stage]
}

// CPUSeconds returns the cumulative attributed CPU seconds per stage
// (the "" key holds unattributed process time).
func (p *Profiler) CPUSeconds() map[string]float64 {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]float64, len(p.cum))
	for k, v := range p.cum {
		out[k] = v
	}
	return out
}

// CPURates returns the smoothed cores-burned estimate per stage over
// recent profile rounds (1.0 = one core saturated).
func (p *Profiler) CPURates() map[string]float64 {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]float64, len(p.rate))
	for k, v := range p.rate {
		out[k] = v
	}
	return out
}

// Rounds returns how many profile rounds completed and how many were
// skipped.
func (p *Profiler) Rounds() (completed, skipped uint64) {
	if p == nil {
		return 0, 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rounds, p.skips
}

// foldCPUProfile parses a runtime/pprof CPU profile (gzipped protobuf)
// and sums the cpu/nanoseconds sample value by each sample's "stage"
// label (unlabeled samples land under ""). The decoder walks the
// profile.proto wire format directly — four fields of a well-known
// message — so the middleware carries no protobuf dependency.
func foldCPUProfile(data []byte) (map[string]int64, error) {
	if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("obs: profile gunzip: %w", err)
		}
		data, err = io.ReadAll(zr)
		if cerr := zr.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, fmt.Errorf("obs: profile gunzip: %w", err)
		}
	}
	// Pass 1 over the Profile message: collect the string table, the raw
	// sample_type submessages, and the raw sample submessages (the string
	// table may follow the samples in the stream).
	var (
		strs        []string
		sampleTypes [][]byte
		samples     [][]byte
	)
	rest := data
	for len(rest) > 0 {
		field, wire, v, payload, n, err := protoField(rest)
		if err != nil {
			return nil, err
		}
		_ = v
		switch {
		case field == 1 && wire == 2: // repeated ValueType sample_type
			sampleTypes = append(sampleTypes, payload)
		case field == 2 && wire == 2: // repeated Sample sample
			samples = append(samples, payload)
		case field == 6 && wire == 2: // repeated string string_table
			strs = append(strs, string(payload))
		}
		rest = rest[n:]
	}
	str := func(i uint64) string {
		if i < uint64(len(strs)) {
			return strs[i]
		}
		return ""
	}
	// The value index of the ("cpu", "nanoseconds") sample type; a CPU
	// profile's layout is [("samples","count"), ("cpu","nanoseconds")],
	// but resolve it by name with last-index fallback.
	cpuIdx := len(sampleTypes) - 1
	for i, st := range sampleTypes {
		var typ, unit uint64
		r := st
		for len(r) > 0 {
			field, _, v, _, n, err := protoField(r)
			if err != nil {
				return nil, err
			}
			switch field {
			case 1:
				typ = v
			case 2:
				unit = v
			}
			r = r[n:]
		}
		if str(typ) == "cpu" && str(unit) == "nanoseconds" {
			cpuIdx = i
		}
	}
	if cpuIdx < 0 {
		return nil, fmt.Errorf("obs: profile has no sample types")
	}
	out := make(map[string]int64)
	for _, sm := range samples {
		var vals []int64
		stage := ""
		r := sm
		for len(r) > 0 {
			field, wire, v, payload, n, err := protoField(r)
			if err != nil {
				return nil, err
			}
			switch {
			case field == 2 && wire == 2: // packed repeated int64 value
				pr := payload
				for len(pr) > 0 {
					u, m := uvarint(pr)
					if m <= 0 {
						return nil, fmt.Errorf("obs: profile sample value truncated")
					}
					vals = append(vals, int64(u))
					pr = pr[m:]
				}
			case field == 2 && wire == 0: // unpacked value
				vals = append(vals, int64(v))
			case field == 3 && wire == 2: // Label label
				var key, sv uint64
				lr := payload
				for len(lr) > 0 {
					lf, _, lv, _, ln, err := protoField(lr)
					if err != nil {
						return nil, err
					}
					switch lf {
					case 1:
						key = lv
					case 2:
						sv = lv
					}
					lr = lr[ln:]
				}
				if str(key) == "stage" {
					stage = str(sv)
				}
			}
			r = r[n:]
		}
		if cpuIdx < len(vals) {
			out[stage] += vals[cpuIdx]
		}
	}
	return out, nil
}

// protoField decodes one protobuf field header plus its value from b:
// varint fields return the value in v, length-delimited fields return the
// payload; n is the total bytes consumed.
func protoField(b []byte) (field, wire int, v uint64, payload []byte, n int, err error) {
	tag, tn := uvarint(b)
	if tn <= 0 {
		return 0, 0, 0, nil, 0, fmt.Errorf("obs: profile field tag truncated")
	}
	field, wire = int(tag>>3), int(tag&7)
	switch wire {
	case 0: // varint
		val, vn := uvarint(b[tn:])
		if vn <= 0 {
			return 0, 0, 0, nil, 0, fmt.Errorf("obs: profile varint truncated")
		}
		return field, wire, val, nil, tn + vn, nil
	case 1: // fixed64
		if len(b) < tn+8 {
			return 0, 0, 0, nil, 0, fmt.Errorf("obs: profile fixed64 truncated")
		}
		return field, wire, 0, nil, tn + 8, nil
	case 2: // length-delimited
		l, ln := uvarint(b[tn:])
		if ln <= 0 || uint64(len(b)) < uint64(tn+ln)+l {
			return 0, 0, 0, nil, 0, fmt.Errorf("obs: profile payload truncated")
		}
		start := tn + ln
		return field, wire, 0, b[start : start+int(l)], start + int(l), nil
	case 5: // fixed32
		if len(b) < tn+4 {
			return 0, 0, 0, nil, 0, fmt.Errorf("obs: profile fixed32 truncated")
		}
		return field, wire, 0, nil, tn + 4, nil
	default:
		return 0, 0, 0, nil, 0, fmt.Errorf("obs: profile wire type %d unsupported", wire)
	}
}

// uvarint decodes an unsigned varint, returning the value and bytes
// consumed (0 when truncated).
func uvarint(b []byte) (uint64, int) {
	var v uint64
	for i := 0; i < len(b) && i < 10; i++ {
		v |= uint64(b[i]&0x7f) << (7 * i)
		if b[i]&0x80 == 0 {
			return v, i + 1
		}
	}
	return 0, 0
}
