package obs

import (
	"sort"
	"strings"
	"sync"
	"time"
)

// This file is the windowed time-series plane behind /timeseries: a
// bounded in-memory store (Series, TSDB) of per-epoch samples on the
// virtual clock, a registry-driven Sampler that fills it each control
// epoch, and the TrendReader view the autoscaler consumes (DESIGN.md §14).
// Point-in-time endpoints (/metrics, /snapshot) answer "what is the state
// now"; this plane answers "which way is it moving" — utilization,
// backlog slope, per-stage CPU burn — over a bounded trailing window.

// Default time-series plane knobs.
const (
	// DefaultTimeseriesEpoch is the virtual interval between samples.
	DefaultTimeseriesEpoch = 500 * time.Millisecond
	// DefaultTimeseriesWindow is the virtual time of history each series
	// retains (the -timeseries-window flag).
	DefaultTimeseriesWindow = 60 * time.Second
	// trendEpochs is the trailing sample count trends (slopes, CPU
	// rates, sparklines) are computed over.
	trendEpochs = 16
	// snapshotEpochs bounds the per-series tail carried inside a
	// /snapshot document, so cluster scrapes stay small; /timeseries
	// serves the full window.
	snapshotEpochs = 32
)

// Per-stage series names the Sampler maintains. Consumers address series
// as (stage, name); pipeline-wide series use stage "".
const (
	// TSArrival is λ: items entering the stage per virtual second.
	TSArrival = "arrival"
	// TSThroughput is μ̂: items leaving the stage per virtual second.
	TSThroughput = "throughput"
	// TSDepth is the stage's input-queue occupancy.
	TSDepth = "depth"
	// TSUtilization is ρ̂ = λ/μ from the adaptation trail (counter-rate
	// fallback when the stage publishes no adaptation epochs).
	TSUtilization = "utilization"
	// TSStallFrac is the fraction of the wall-clock epoch producers
	// spent parked pushing into the stage's full input buffer.
	TSStallFrac = "stall_frac"
	// TSCPUSeconds is the cumulative profiler-attributed CPU seconds
	// burned by goroutines labeled with this stage.
	TSCPUSeconds = "cpu_seconds"
	// TSDTilde is the adaptation controller's smoothed queue-growth rate.
	TSDTilde = "d_tilde"
	// TSSinkP99 is the pipeline-wide sink-side e2e p99 (stage "").
	TSSinkP99 = "sink_p99"
)

// TSample is one retained observation.
type TSample struct {
	At time.Time `json:"at"`
	V  float64   `json:"v"`
}

// Series is a fixed-capacity ring of time-stamped samples. Add is O(1)
// and allocation-free after construction; readers take a short lock. Safe
// for concurrent use.
type Series struct {
	mu    sync.Mutex
	at    []int64 // UnixNano, parallel to val
	val   []float64
	next  int // ring slot the next Add writes
	n     int // live samples, <= cap
	total uint64
}

// NewSeries returns a ring retaining up to capacity samples (minimum 2).
func NewSeries(capacity int) *Series {
	if capacity < 2 {
		capacity = 2
	}
	return &Series{at: make([]int64, capacity), val: make([]float64, capacity)}
}

// Add appends one sample, evicting the oldest when full.
func (s *Series) Add(at time.Time, v float64) {
	s.mu.Lock()
	s.at[s.next] = at.UnixNano()
	s.val[s.next] = v
	s.next = (s.next + 1) % len(s.at)
	if s.n < len(s.at) {
		s.n++
	}
	s.total++
	s.mu.Unlock()
}

// Len returns the number of retained samples.
func (s *Series) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Total returns how many samples were ever added (retained or evicted).
func (s *Series) Total() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// idx maps logical position i (0 = oldest) to a ring slot. Caller holds mu.
func (s *Series) idx(i int) int {
	return (s.next - s.n + i + len(s.at)) % len(s.at)
}

// Last returns the most recent sample.
func (s *Series) Last() (TSample, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n == 0 {
		return TSample{}, false
	}
	j := s.idx(s.n - 1)
	return TSample{At: time.Unix(0, s.at[j]), V: s.val[j]}, true
}

// Samples returns the retained samples at or after since, oldest first.
// A zero since returns the whole window.
func (s *Series) Samples(since time.Time) []TSample {
	cut := int64(0)
	if !since.IsZero() {
		cut = since.UnixNano()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]TSample, 0, s.n)
	for i := 0; i < s.n; i++ {
		j := s.idx(i)
		if s.at[j] < cut {
			continue
		}
		out = append(out, TSample{At: time.Unix(0, s.at[j]), V: s.val[j]})
	}
	return out
}

// LastN returns up to the n most recent values, oldest first.
func (s *Series) LastN(n int) []float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n > s.n {
		n = s.n
	}
	out := make([]float64, 0, n)
	for i := s.n - n; i < s.n; i++ {
		out = append(out, s.val[s.idx(i)])
	}
	return out
}

// MinMax returns the extremes over the retained window.
func (s *Series) MinMax() (min, max float64, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n == 0 {
		return 0, 0, false
	}
	j := s.idx(0)
	min, max = s.val[j], s.val[j]
	for i := 1; i < s.n; i++ {
		v := s.val[s.idx(i)]
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return min, max, true
}

// DeltaLastN returns last − first over the n most recent samples — the
// counter-delta over that sub-window (0 with fewer than two samples).
func (s *Series) DeltaLastN(n int) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n > s.n {
		n = s.n
	}
	if n < 2 {
		return 0
	}
	return s.val[s.idx(s.n-1)] - s.val[s.idx(s.n-n)]
}

// SlopeLastN returns the least-squares slope, in value units per virtual
// second, over the n most recent samples (0 with fewer than two samples
// or no time spread). This is the trend signal the autoscaler reads: a
// persistently positive depth slope means the stage is structurally
// behind its arrival rate, not just momentarily bursty.
func (s *Series) SlopeLastN(n int) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n > s.n {
		n = s.n
	}
	if n < 2 {
		return 0
	}
	start := s.n - n
	t0 := s.at[s.idx(start)]
	var sumT, sumV, sumTT, sumTV float64
	for i := start; i < s.n; i++ {
		j := s.idx(i)
		tt := float64(s.at[j]-t0) * 1e-9
		sumT += tt
		sumV += s.val[j]
		sumTT += tt * tt
		sumTV += tt * s.val[j]
	}
	fn := float64(n)
	den := fn*sumTT - sumT*sumT
	if den == 0 {
		return 0
	}
	return (fn*sumTV - sumT*sumV) / den
}

// seriesKey addresses one series in a TSDB.
type seriesKey struct{ stage, name string }

// TSDB is the bounded collection of Series the Sampler fills: one ring
// per (stage, name). Series are created on first touch and never removed
// — the stage set of a deployment is small and stable. Safe for
// concurrent use.
type TSDB struct {
	epoch time.Duration
	cap   int

	mu     sync.Mutex
	series map[seriesKey]*Series
	order  []seriesKey
}

// NewTSDB returns an empty store sampling every epoch of virtual time
// with window/epoch slots per series (zero arguments select the
// defaults).
func NewTSDB(epoch, window time.Duration) *TSDB {
	if epoch <= 0 {
		epoch = DefaultTimeseriesEpoch
	}
	if window <= 0 {
		window = DefaultTimeseriesWindow
	}
	capacity := int(window / epoch)
	if capacity < 2 {
		capacity = 2
	}
	if capacity > 4096 {
		capacity = 4096
	}
	return &TSDB{epoch: epoch, cap: capacity, series: make(map[seriesKey]*Series)}
}

// Epoch returns the sampling interval (virtual time).
func (db *TSDB) Epoch() time.Duration { return db.epoch }

// Capacity returns the per-series ring size.
func (db *TSDB) Capacity() int { return db.cap }

// Series returns the (stage, name) series, creating it on first use.
func (db *TSDB) Series(stage, name string) *Series {
	db.mu.Lock()
	defer db.mu.Unlock()
	k := seriesKey{stage, name}
	s, ok := db.series[k]
	if !ok {
		s = NewSeries(db.cap)
		db.series[k] = s
		db.order = append(db.order, k)
	}
	return s
}

// Get returns the (stage, name) series without creating it.
func (db *TSDB) Get(stage, name string) (*Series, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	s, ok := db.series[seriesKey{stage, name}]
	return s, ok
}

// Stages returns the sorted stage names with at least one series
// (excluding the pipeline-wide "" pseudo-stage).
func (db *TSDB) Stages() []string {
	db.mu.Lock()
	defer db.mu.Unlock()
	seen := make(map[string]bool)
	var out []string
	for _, k := range db.order {
		if k.stage != "" && !seen[k.stage] {
			seen[k.stage] = true
			out = append(out, k.stage)
		}
	}
	sort.Strings(out)
	return out
}

// SeriesDump is one series in a /timeseries or /cluster document.
type SeriesDump struct {
	// Stage is the owning stage; empty for pipeline-wide series.
	Stage string `json:"stage,omitempty"`
	// Node is filled by the cluster aggregator (node-labeled merge);
	// empty in a node's own /timeseries output.
	Node string `json:"node,omitempty"`
	// Name is the series name (TSDepth, TSUtilization, ...).
	Name string `json:"name"`
	// Samples is the retained window, oldest first.
	Samples []TSample `json:"samples"`
}

// Dump renders the store as JSON-ready series, filtered to the trailing
// window (0 = everything retained) and to one stage ("" = all; the
// pipeline-wide "" series always survive the stage filter).
func (db *TSDB) Dump(now time.Time, window time.Duration, stage string) []SeriesDump {
	var since time.Time
	if window > 0 {
		since = now.Add(-window)
	}
	db.mu.Lock()
	keys := make([]seriesKey, len(db.order))
	copy(keys, db.order)
	db.mu.Unlock()
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].stage != keys[j].stage {
			return keys[i].stage < keys[j].stage
		}
		return keys[i].name < keys[j].name
	})
	out := make([]SeriesDump, 0, len(keys))
	for _, k := range keys {
		if stage != "" && k.stage != "" && k.stage != stage {
			continue
		}
		s, ok := db.Get(k.stage, k.name)
		if !ok {
			continue
		}
		out = append(out, SeriesDump{Stage: k.stage, Name: k.name, Samples: s.Samples(since)})
	}
	return out
}

// sparkRunes are the eight sparkline levels, lowest to highest.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders vals as a fixed-height unicode strip, scaled to the
// slice's own min..max (a flat series renders as its lowest level).
func Sparkline(vals []float64) string {
	if len(vals) == 0 {
		return ""
	}
	min, max := vals[0], vals[0]
	for _, v := range vals[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	for _, v := range vals {
		lvl := 0
		if max > min {
			lvl = int((v - min) / (max - min) * float64(len(sparkRunes)-1))
		}
		b.WriteRune(sparkRunes[lvl])
	}
	return b.String()
}

// TrendArrow summarizes a slope's direction: "↑" rising, "↓" falling,
// "→" flat within eps.
func TrendArrow(slope, eps float64) string {
	switch {
	case slope > eps:
		return "↑"
	case slope < -eps:
		return "↓"
	default:
		return "→"
	}
}
