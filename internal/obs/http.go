package obs

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"time"
)

// Handler returns the observability HTTP surface of a node:
//
//	/metrics      Prometheus text exposition of the registry
//	/snapshot     JSON snapshot of every metric series
//	/adaptations  JSON audit trail of adaptation decisions
//	/migrations   JSON migration events and stage lifecycle transitions
//	/traces       JSON of the retained sampled spans
//	/             plain-text index of the above
//
// Endpoints degrade gracefully when a facility is absent from o (e.g. a
// disabled tracer serves an empty span list).
func Handler(o *Observability) http.Handler {
	if o == nil {
		panic("obs: Handler requires an Observability bundle")
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if o.Registry != nil {
			o.Registry.WritePrometheus(w)
		}
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, r *http.Request) {
		var points []MetricPoint
		if o.Registry != nil {
			points = o.Registry.Snapshot()
		}
		writeJSON(w, struct {
			At      time.Time     `json:"at"`
			Metrics []MetricPoint `json:"metrics"`
		}{At: o.Clock.Now(), Metrics: points})
	})
	mux.HandleFunc("/adaptations", func(w http.ResponseWriter, r *http.Request) {
		events := o.Audit.Events()
		if events == nil {
			events = []AdaptationEvent{}
		}
		writeJSON(w, struct {
			Total  uint64            `json:"total"`
			Events []AdaptationEvent `json:"events"`
		}{Total: o.Audit.Total(), Events: events})
	})
	mux.HandleFunc("/migrations", func(w http.ResponseWriter, r *http.Request) {
		events := o.Migrations.Events()
		if events == nil {
			events = []MigrationEvent{}
		}
		lifecycle := o.Lifecycle.Events()
		if lifecycle == nil {
			lifecycle = []LifecycleEvent{}
		}
		writeJSON(w, struct {
			Total     uint64           `json:"total"`
			Events    []MigrationEvent `json:"events"`
			Lifecycle []LifecycleEvent `json:"lifecycle"`
		}{Total: o.Migrations.Total(), Events: events, Lifecycle: lifecycle})
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, r *http.Request) {
		spans := o.Tracer.Spans()
		if spans == nil {
			spans = []SpanRecord{}
		}
		started, sampled := o.Tracer.Counts()
		writeJSON(w, struct {
			Started uint64       `json:"started"`
			Sampled uint64       `json:"sampled"`
			Spans   []SpanRecord `json:"spans"`
		}{Started: started, Sampled: sampled, Spans: spans})
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "GATES observability endpoints:")
		fmt.Fprintln(w, "  /metrics      Prometheus text format")
		fmt.Fprintln(w, "  /snapshot     JSON metric snapshot")
		fmt.Fprintln(w, "  /adaptations  adaptation audit trail")
		fmt.Fprintln(w, "  /migrations   stage migrations and lifecycle transitions")
		fmt.Fprintln(w, "  /traces       sampled hot-path spans")
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// Server is a running observability HTTP endpoint.
type Server struct {
	ln   net.Listener
	srv  *http.Server
	done chan struct{}
}

// Serve exposes o's Handler at addr (":0" picks a free port) and returns
// once the listener is bound, so the endpoint is queryable immediately.
func Serve(addr string, o *Observability) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s := &Server{
		ln:   ln,
		srv:  &http.Server{Handler: Handler(o)},
		done: make(chan struct{}),
	}
	go func() {
		defer close(s.done)
		if err := s.srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			o.Log().Error("obs http server failed", "addr", ln.Addr().String(), "err", err)
		}
	}()
	return s, nil
}

// Addr returns the bound address ("127.0.0.1:port").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and waits for the serve loop to end.
func (s *Server) Close() error {
	err := s.srv.Close()
	<-s.done
	return err
}
