package obs

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// HandlerOptions extends the observability surface with deployment-aware
// endpoints. The zero value is valid and serves the plain per-node
// surface.
type HandlerOptions struct {
	// Ready reports whether the node is ready to serve (for gates-node
	// and gates-launcher: all local stage instances in the Running
	// state). Nil means /readyz always answers ready — a node with no
	// engine has nothing to wait for.
	Ready func() bool
	// Aggregator, when set, serves the merged pipeline-wide view at
	// /cluster (the launcher's role); /cluster answers 404 without it.
	Aggregator *Aggregator
	// Policy, when set, is mounted at /policy: GET returns the active
	// policy document and its version, POST hot-reloads a new one
	// (validation failures leave the active document in place). The
	// handler comes from the policy engine so obs stays policy-agnostic;
	// /policy answers 404 without it.
	Policy http.Handler
}

// Handler returns the observability HTTP surface of a node:
//
//	/metrics      Prometheus text exposition of the registry
//	/snapshot     JSON node snapshot: metrics + adaptation, migration,
//	              and lifecycle trails (everything a cluster aggregator
//	              needs in one scrape)
//	/timeseries   JSON windowed per-stage series + trend summary
//	              (?window= and ?stage= filters; 404 without a sampler)
//	/adaptations  JSON audit trail of adaptation decisions
//	/migrations   JSON migration events and stage lifecycle transitions
//	/traces       JSON of the retained sampled spans
//	/healthz      liveness (200 once the process serves HTTP)
//	/readyz       readiness (503 until every local stage is Running)
//	/cluster      merged cluster view (launcher only; see HandlerOptions)
//	/debug/pprof  Go runtime profiling
//	/             plain-text index of the above
//
// Endpoints degrade gracefully when a facility is absent from o (e.g. a
// disabled tracer serves an empty span list).
func Handler(o *Observability) http.Handler {
	return HandlerWith(o, HandlerOptions{})
}

// HandlerWith is Handler with deployment-aware endpoints enabled.
func HandlerWith(o *Observability, opt HandlerOptions) http.Handler {
	if o == nil {
		panic("obs: Handler requires an Observability bundle")
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if o.Registry != nil {
			o.Registry.WritePrometheus(w)
		}
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, o.NodeSnapshot())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if opt.Ready != nil && !opt.Ready() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "not ready: stages not all running")
			return
		}
		fmt.Fprintln(w, "ready")
	})
	mux.HandleFunc("/cluster", func(w http.ResponseWriter, r *http.Request) {
		if opt.Aggregator == nil {
			http.NotFound(w, r)
			return
		}
		writeJSON(w, opt.Aggregator.Collect())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/adaptations", func(w http.ResponseWriter, r *http.Request) {
		events := o.Audit.Events()
		if events == nil {
			events = []AdaptationEvent{}
		}
		writeJSON(w, struct {
			Total  uint64            `json:"total"`
			Events []AdaptationEvent `json:"events"`
		}{Total: o.Audit.Total(), Events: events})
	})
	mux.HandleFunc("/migrations", func(w http.ResponseWriter, r *http.Request) {
		events := o.Migrations.Events()
		if events == nil {
			events = []MigrationEvent{}
		}
		lifecycle := o.Lifecycle.Events()
		if lifecycle == nil {
			lifecycle = []LifecycleEvent{}
		}
		writeJSON(w, struct {
			Total     uint64           `json:"total"`
			Events    []MigrationEvent `json:"events"`
			Lifecycle []LifecycleEvent `json:"lifecycle"`
		}{Total: o.Migrations.Total(), Events: events, Lifecycle: lifecycle})
	})
	mux.HandleFunc("/flightrecorder", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := o.FlightRec().WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/bottlenecks", func(w http.ResponseWriter, r *http.Request) {
		// Each request is one attribution epoch over the local registry:
		// stall-counter deltas since the previous request (or process
		// start), so two curls bracket exactly the window between them.
		writeJSON(w, o.Attr().ObserveRegistry(o.Reg()))
	})
	mux.HandleFunc("/timeseries", func(w http.ResponseWriter, r *http.Request) {
		if o.Sampler == nil {
			http.NotFound(w, r)
			return
		}
		var window time.Duration
		if q := r.URL.Query().Get("window"); q != "" {
			d, err := time.ParseDuration(q)
			if err != nil || d < 0 {
				http.Error(w, "bad window: want a positive Go duration (e.g. 30s)", http.StatusBadRequest)
				return
			}
			window = d
		}
		writeJSON(w, o.Sampler.Dump(window, r.URL.Query().Get("stage")))
	})
	mux.HandleFunc("/decisions", func(w http.ResponseWriter, r *http.Request) {
		events := o.Decisions.Events()
		if events == nil {
			events = []DecisionEvent{}
		}
		writeJSON(w, struct {
			Total  uint64          `json:"total"`
			Events []DecisionEvent `json:"events"`
		}{Total: o.Decisions.Total(), Events: events})
	})
	if opt.Policy != nil {
		mux.Handle("/policy", opt.Policy)
	}
	mux.HandleFunc("/traces", func(w http.ResponseWriter, r *http.Request) {
		spans := o.Tracer.Spans()
		if spans == nil {
			spans = []SpanRecord{}
		}
		started, sampled := o.Tracer.Counts()
		writeJSON(w, struct {
			Started uint64       `json:"started"`
			Sampled uint64       `json:"sampled"`
			Spans   []SpanRecord `json:"spans"`
		}{Started: started, Sampled: sampled, Spans: spans})
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "GATES observability endpoints:")
		fmt.Fprintln(w, "  /metrics      Prometheus text format")
		fmt.Fprintln(w, "  /snapshot     JSON node snapshot (metrics + event trails)")
		fmt.Fprintln(w, "  /adaptations  adaptation audit trail")
		fmt.Fprintln(w, "  /migrations   stage migrations and lifecycle transitions")
		fmt.Fprintln(w, "  /traces       sampled hot-path spans")
		fmt.Fprintln(w, "  /flightrecorder  bounded ring of lifecycle/SLO/stall events")
		fmt.Fprintln(w, "  /bottlenecks  backpressure attribution verdict")
		fmt.Fprintln(w, "  /decisions    control-plane decision log (placements, rebalances, SLO verdicts)")
		fmt.Fprintln(w, "  /timeseries   windowed per-stage series + trends (?window=30s&stage=name)")
		if opt.Policy != nil {
			fmt.Fprintln(w, "  /policy       active policy document (GET) / hot reload (POST)")
		}
		fmt.Fprintln(w, "  /healthz      liveness probe")
		fmt.Fprintln(w, "  /readyz       readiness probe (all stages running)")
		if opt.Aggregator != nil {
			fmt.Fprintln(w, "  /cluster      merged pipeline-wide view")
		}
		fmt.Fprintln(w, "  /debug/pprof  runtime profiles")
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// Server is a running observability HTTP endpoint.
type Server struct {
	ln   net.Listener
	srv  *http.Server
	done chan struct{}
}

// Serve exposes o's Handler at addr (":0" picks a free port) and returns
// once the listener is bound, so the endpoint is queryable immediately.
func Serve(addr string, o *Observability) (*Server, error) {
	return ServeWith(addr, o, HandlerOptions{})
}

// ServeWith is Serve with deployment-aware endpoints enabled.
func ServeWith(addr string, o *Observability, opt HandlerOptions) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s := &Server{
		ln:   ln,
		srv:  &http.Server{Handler: HandlerWith(o, opt)},
		done: make(chan struct{}),
	}
	go func() {
		defer close(s.done)
		if err := s.srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			o.Log().Error("obs http server failed", "addr", ln.Addr().String(), "err", err)
		}
	}()
	return s, nil
}

// Addr returns the bound address ("127.0.0.1:port").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and waits for the serve loop to end.
func (s *Server) Close() error {
	err := s.srv.Close()
	<-s.done
	return err
}
