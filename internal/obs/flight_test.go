package obs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/gates-middleware/gates/internal/clock"
)

func TestFlightRecorderWraparound(t *testing.T) {
	clk := clock.NewManual()
	f := NewFlightRecorder(clk, 4)
	for i := 0; i < 10; i++ {
		clk.Advance(time.Second)
		f.Record(FlightEvent{Kind: FlightLifecycle, Stage: "s", Instance: i})
	}
	if got := f.Total(); got != 10 {
		t.Fatalf("Total = %d, want 10", got)
	}
	evs := f.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want capacity 4", len(evs))
	}
	for i, ev := range evs {
		wantSeq := uint64(6 + i)
		if ev.Seq != wantSeq {
			t.Fatalf("event %d seq = %d, want %d (oldest evicted first)", i, ev.Seq, wantSeq)
		}
		if ev.Instance != 6+i {
			t.Fatalf("event %d instance = %d, want %d", i, ev.Instance, 6+i)
		}
		if ev.At.IsZero() {
			t.Fatalf("event %d missing virtual timestamp", i)
		}
	}
	if evs[0].At.After(evs[3].At) {
		t.Fatalf("timestamps out of order: %v then %v", evs[0].At, evs[3].At)
	}
}

func TestFlightRecorderNilSafe(t *testing.T) {
	var f *FlightRecorder
	f.Record(FlightEvent{Kind: FlightSLO}) // must not panic
	if f.Total() != 0 || f.Events() != nil {
		t.Fatal("nil recorder should report nothing")
	}
	if path, err := f.DumpToDisk("x"); path != "" || err != nil {
		t.Fatalf("nil DumpToDisk = (%q, %v)", path, err)
	}
}

func TestFlightRecorderDumpToDisk(t *testing.T) {
	clk := clock.NewManual()
	f := NewFlightRecorder(clk, 8)
	f.Record(FlightEvent{Kind: FlightStallOnset, Stage: "relay", Detail: "emit blocked"})

	// No path configured: a silent no-op, not an error.
	if path, err := f.DumpToDisk("sigquit"); path != "" || err != nil {
		t.Fatalf("dump without path = (%q, %v), want no-op", path, err)
	}

	target := filepath.Join(t.TempDir(), "flight.json")
	f.SetDumpPath(target)
	path, err := f.DumpToDisk("sigquit")
	if err != nil || path != target {
		t.Fatalf("DumpToDisk = (%q, %v), want %q", path, err, target)
	}
	data, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}
	var d struct {
		Total  uint64        `json:"total"`
		Dumps  uint64        `json:"dumps"`
		Events []FlightEvent `json:"events"`
	}
	if err := json.Unmarshal(data, &d); err != nil {
		t.Fatalf("dump is not JSON: %v", err)
	}
	// The dump itself is recorded, so the snapshot contains its own cause.
	if d.Total != 2 || len(d.Events) != 2 {
		t.Fatalf("dump carries %d/%d events, want 2 (stall + dump marker)", d.Total, len(d.Events))
	}
	if d.Events[1].Kind != FlightDump || d.Events[1].Detail != "sigquit" {
		t.Fatalf("last event = %+v, want the dump marker", d.Events[1])
	}

	// A failing dump is remembered in the envelope, not just returned.
	f.SetDumpPath(filepath.Join(t.TempDir(), "no-such-dir", "x", "flight.json"))
	if _, err := f.DumpToDisk("sigquit"); err == nil {
		t.Fatal("dump into a missing directory should fail")
	}
	var sb strings.Builder
	if err := f.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "dumpErr") {
		t.Fatalf("envelope does not remember the dump error: %s", sb.String())
	}
}

// TestFlightDumpRoundTrip writes a dump and reads it back: every retained
// event must survive the disk trip byte-identically (same order, same
// payloads), with the dump marker appended as the final event.
func TestFlightDumpRoundTrip(t *testing.T) {
	clk := clock.NewManual()
	f := NewFlightRecorder(clk, 16)
	for i := 0; i < 5; i++ {
		clk.Advance(time.Second)
		f.Record(FlightEvent{Kind: FlightLifecycle, Stage: "s", Instance: i, Detail: "running"})
	}
	target := filepath.Join(t.TempDir(), "flight.json")
	f.SetDumpPath(target)
	if _, err := f.DumpToDisk("slo-violation"); err != nil {
		t.Fatal(err)
	}

	want := f.Events() // includes the dump marker
	data, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}
	var d struct {
		Total  uint64        `json:"total"`
		Events []FlightEvent `json:"events"`
	}
	if err := json.Unmarshal(data, &d); err != nil {
		t.Fatalf("dump is not JSON: %v", err)
	}
	if len(d.Events) != len(want) {
		t.Fatalf("round-trip kept %d events, want %d", len(d.Events), len(want))
	}
	for i := range want {
		g, w := d.Events[i], want[i]
		if g.Seq != w.Seq || g.Kind != w.Kind || g.Stage != w.Stage ||
			g.Instance != w.Instance || g.Detail != w.Detail || !g.At.Equal(w.At) {
			t.Fatalf("event %d round-tripped as %+v, want %+v", i, g, w)
		}
	}
	if last := d.Events[len(d.Events)-1]; last.Kind != FlightDump || last.Detail != "slo-violation" {
		t.Fatalf("last event = %+v, want the slo-violation dump marker", last)
	}
}

// TestFlightDumpConcurrentNoClobber hammers DumpToDisk from several
// goroutines — the "second violation while the first dump is still being
// written" race. The temp+rename protocol must keep every read of the
// target a complete JSON document and leave no temp files behind.
func TestFlightDumpConcurrentNoClobber(t *testing.T) {
	clk := clock.NewManual()
	f := NewFlightRecorder(clk, 64)
	dir := t.TempDir()
	target := filepath.Join(dir, "flight.json")
	f.SetDumpPath(target)
	if _, err := f.DumpToDisk("seed"); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				f.Record(FlightEvent{Kind: FlightSLO, Stage: "s", Instance: w, Detail: "violated"})
				if _, err := f.DumpToDisk("slo-violation"); err != nil {
					t.Errorf("dump %d/%d: %v", w, i, err)
					return
				}
			}
		}(w)
	}
	// Reader: every observation of the target must parse — a clobbered or
	// half-written file fails Unmarshal.
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for i := 0; i < 200; i++ {
			data, err := os.ReadFile(target)
			if err != nil {
				t.Errorf("read during dumps: %v", err)
				return
			}
			var d map[string]any
			if err := json.Unmarshal(data, &d); err != nil {
				t.Errorf("observed a torn dump (%d bytes): %v", len(data), err)
				return
			}
		}
	}()
	wg.Wait()
	<-readerDone

	// All temp files were renamed into place or cleaned up on error.
	leftovers, err := filepath.Glob(filepath.Join(dir, ".gates-flight-*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(leftovers) != 0 {
		t.Fatalf("dump left temp files behind: %v", leftovers)
	}
	var sb strings.Builder
	if err := f.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "\"dumps\": 101") {
		t.Fatalf("envelope should count 101 successful dumps: %s", sb.String())
	}
}

// TestAggregatorDumpsFlightOnViolation drives the aggregator's SLO detector
// into violation on a manual clock and asserts the transition lands in the
// flight recorder and on disk.
func TestAggregatorDumpsFlightOnViolation(t *testing.T) {
	clk := clock.NewManual()
	f := NewFlightRecorder(clk, 32)
	target := filepath.Join(t.TempDir(), "flight.json")
	f.SetDumpPath(target)

	agg := NewAggregator(clk, SLOConfig{})
	agg.SetFlightRecorder(f)
	agg.AddSource("n1", func() (NodeSnapshot, error) {
		return NodeSnapshot{
			At:      clk.Now(),
			Metrics: []MetricPoint{dTildePoint("hot", "n1", 2.5)},
		}, nil
	})

	// d-tilde must stay positive for DefaultSLOGrowthEpochs consecutive
	// evaluations before the detector trips.
	for i := 0; i < DefaultSLOGrowthEpochs; i++ {
		clk.Advance(time.Second)
		view := agg.Collect()
		if i < DefaultSLOGrowthEpochs-1 && view.SLO.Violated {
			t.Fatalf("tripped after %d epochs, want %d", i+1, DefaultSLOGrowthEpochs)
		}
	}
	if !agg.Violated() {
		t.Fatal("detector did not trip after growth epochs")
	}

	var slo *FlightEvent
	for _, ev := range f.Events() {
		if ev.Kind == FlightSLO {
			cp := ev
			slo = &cp
		}
	}
	if slo == nil {
		t.Fatalf("no FlightSLO event recorded; events: %+v", f.Events())
	}
	if !strings.Contains(slo.Detail, "queue growth") {
		t.Fatalf("SLO event detail = %q, want the violation reason", slo.Detail)
	}
	data, err := os.ReadFile(target)
	if err != nil {
		t.Fatalf("violation did not dump to disk: %v", err)
	}
	if !strings.Contains(string(data), "slo-violation") {
		t.Fatal("disk dump missing the slo-violation marker")
	}

	// Recovery records the matching transition but does not dump again.
	before, _ := os.Stat(target)
	agg2src := func() (NodeSnapshot, error) {
		return NodeSnapshot{
			At:      clk.Now(),
			Metrics: []MetricPoint{dTildePoint("hot", "n1", -1)},
		}, nil
	}
	agg.mu.Lock()
	agg.sources[0].fn = agg2src
	agg.mu.Unlock()
	clk.Advance(time.Second)
	if view := agg.Collect(); view.SLO.Violated {
		t.Fatal("detector did not recover")
	}
	last := f.Events()[len(f.Events())-1]
	if last.Kind != FlightSLO || last.Detail != "recovered" {
		t.Fatalf("last event = %+v, want the recovery transition", last)
	}
	after, _ := os.Stat(target)
	if !after.ModTime().Equal(before.ModTime()) || after.Size() != before.Size() {
		t.Fatal("recovery should not rewrite the disk dump")
	}
}

// TestSLOMonitorConcurrentEvaluateStatus exercises the detector under the
// race detector: evaluations mutate the growth map while scrapes read the
// status — the /metrics-while-collecting pattern.
func TestSLOMonitorConcurrentEvaluateStatus(t *testing.T) {
	m := NewSLOMonitor(SLOConfig{TargetP99: 0.5}, 0)
	points := []MetricPoint{
		fanoutPoint("sink", "0", 0),
		e2ePoint("sink", "", 0, 100, 0),
		dTildePoint("hot", "n1", 1),
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = m.Status()
					_ = m.Events()
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		m.Evaluate(sloBase.Add(time.Duration(i)*time.Second), points)
	}
	close(stop)
	wg.Wait()
	if st := m.Status(); !st.Evaluated || !st.Violated {
		t.Fatalf("status after concurrent evaluations = %+v", st)
	}
}

// TestAggregatorConcurrentScrape collects in a loop while other goroutines
// scrape the aggregator and the bundle's registry — the live /cluster,
// /metrics, /bottlenecks, and /flightrecorder surfaces all at once.
func TestAggregatorConcurrentScrape(t *testing.T) {
	clk := clock.NewManual()
	ob := New(clk, Config{SampleEvery: -1})
	ob.Registry.GaugeFunc(MetricDTilde, "d~", map[string]string{
		"stage": "hot", "instance": "0", "node": "n1",
	}, func() float64 { return 1 })

	agg := NewAggregator(clk, SLOConfig{})
	agg.SetFlightRecorder(ob.Flight)
	agg.AddSource("local", LocalSource(ob))
	ob.Registry.GaugeFunc("gates_slo_violation", "flag", nil, func() float64 {
		if agg.Violated() {
			return 1
		}
		return 0
	})

	var wg sync.WaitGroup
	stop := make(chan struct{})
	scrape := func(fn func()) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					fn()
				}
			}
		}()
	}
	scrape(func() { _ = agg.SLOStatus() })
	scrape(func() { _ = agg.View() })
	scrape(func() { _ = agg.Violated() })
	scrape(func() { _ = ob.Registry.Snapshot() })
	scrape(func() { _ = ob.Attr().Last() })
	scrape(func() {
		ob.Flight.Record(FlightEvent{Kind: FlightStallOnset, Stage: "hot"})
		_ = ob.Flight.Events()
	})
	for i := 0; i < 100; i++ {
		clk.Advance(time.Second)
		agg.Collect()
	}
	close(stop)
	wg.Wait()
	if view := agg.View(); view.Bottlenecks == nil {
		t.Fatal("cluster view missing the attribution report")
	}
}
