package obs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/gates-middleware/gates/internal/clock"
)

func TestFlightRecorderWraparound(t *testing.T) {
	clk := clock.NewManual()
	f := NewFlightRecorder(clk, 4)
	for i := 0; i < 10; i++ {
		clk.Advance(time.Second)
		f.Record(FlightEvent{Kind: FlightLifecycle, Stage: "s", Instance: i})
	}
	if got := f.Total(); got != 10 {
		t.Fatalf("Total = %d, want 10", got)
	}
	evs := f.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want capacity 4", len(evs))
	}
	for i, ev := range evs {
		wantSeq := uint64(6 + i)
		if ev.Seq != wantSeq {
			t.Fatalf("event %d seq = %d, want %d (oldest evicted first)", i, ev.Seq, wantSeq)
		}
		if ev.Instance != 6+i {
			t.Fatalf("event %d instance = %d, want %d", i, ev.Instance, 6+i)
		}
		if ev.At.IsZero() {
			t.Fatalf("event %d missing virtual timestamp", i)
		}
	}
	if evs[0].At.After(evs[3].At) {
		t.Fatalf("timestamps out of order: %v then %v", evs[0].At, evs[3].At)
	}
}

func TestFlightRecorderNilSafe(t *testing.T) {
	var f *FlightRecorder
	f.Record(FlightEvent{Kind: FlightSLO}) // must not panic
	if f.Total() != 0 || f.Events() != nil {
		t.Fatal("nil recorder should report nothing")
	}
	if path, err := f.DumpToDisk("x"); path != "" || err != nil {
		t.Fatalf("nil DumpToDisk = (%q, %v)", path, err)
	}
}

func TestFlightRecorderDumpToDisk(t *testing.T) {
	clk := clock.NewManual()
	f := NewFlightRecorder(clk, 8)
	f.Record(FlightEvent{Kind: FlightStallOnset, Stage: "relay", Detail: "emit blocked"})

	// No path configured: a silent no-op, not an error.
	if path, err := f.DumpToDisk("sigquit"); path != "" || err != nil {
		t.Fatalf("dump without path = (%q, %v), want no-op", path, err)
	}

	target := filepath.Join(t.TempDir(), "flight.json")
	f.SetDumpPath(target)
	path, err := f.DumpToDisk("sigquit")
	if err != nil || path != target {
		t.Fatalf("DumpToDisk = (%q, %v), want %q", path, err, target)
	}
	data, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}
	var d struct {
		Total  uint64        `json:"total"`
		Dumps  uint64        `json:"dumps"`
		Events []FlightEvent `json:"events"`
	}
	if err := json.Unmarshal(data, &d); err != nil {
		t.Fatalf("dump is not JSON: %v", err)
	}
	// The dump itself is recorded, so the snapshot contains its own cause.
	if d.Total != 2 || len(d.Events) != 2 {
		t.Fatalf("dump carries %d/%d events, want 2 (stall + dump marker)", d.Total, len(d.Events))
	}
	if d.Events[1].Kind != FlightDump || d.Events[1].Detail != "sigquit" {
		t.Fatalf("last event = %+v, want the dump marker", d.Events[1])
	}

	// A failing dump is remembered in the envelope, not just returned.
	f.SetDumpPath(filepath.Join(t.TempDir(), "no-such-dir", "x", "flight.json"))
	if _, err := f.DumpToDisk("sigquit"); err == nil {
		t.Fatal("dump into a missing directory should fail")
	}
	var sb strings.Builder
	if err := f.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "dumpErr") {
		t.Fatalf("envelope does not remember the dump error: %s", sb.String())
	}
}

// TestAggregatorDumpsFlightOnViolation drives the aggregator's SLO detector
// into violation on a manual clock and asserts the transition lands in the
// flight recorder and on disk.
func TestAggregatorDumpsFlightOnViolation(t *testing.T) {
	clk := clock.NewManual()
	f := NewFlightRecorder(clk, 32)
	target := filepath.Join(t.TempDir(), "flight.json")
	f.SetDumpPath(target)

	agg := NewAggregator(clk, SLOConfig{})
	agg.SetFlightRecorder(f)
	agg.AddSource("n1", func() (NodeSnapshot, error) {
		return NodeSnapshot{
			At:      clk.Now(),
			Metrics: []MetricPoint{dTildePoint("hot", "n1", 2.5)},
		}, nil
	})

	// d-tilde must stay positive for DefaultSLOGrowthEpochs consecutive
	// evaluations before the detector trips.
	for i := 0; i < DefaultSLOGrowthEpochs; i++ {
		clk.Advance(time.Second)
		view := agg.Collect()
		if i < DefaultSLOGrowthEpochs-1 && view.SLO.Violated {
			t.Fatalf("tripped after %d epochs, want %d", i+1, DefaultSLOGrowthEpochs)
		}
	}
	if !agg.Violated() {
		t.Fatal("detector did not trip after growth epochs")
	}

	var slo *FlightEvent
	for _, ev := range f.Events() {
		if ev.Kind == FlightSLO {
			cp := ev
			slo = &cp
		}
	}
	if slo == nil {
		t.Fatalf("no FlightSLO event recorded; events: %+v", f.Events())
	}
	if !strings.Contains(slo.Detail, "queue growth") {
		t.Fatalf("SLO event detail = %q, want the violation reason", slo.Detail)
	}
	data, err := os.ReadFile(target)
	if err != nil {
		t.Fatalf("violation did not dump to disk: %v", err)
	}
	if !strings.Contains(string(data), "slo-violation") {
		t.Fatal("disk dump missing the slo-violation marker")
	}

	// Recovery records the matching transition but does not dump again.
	before, _ := os.Stat(target)
	agg2src := func() (NodeSnapshot, error) {
		return NodeSnapshot{
			At:      clk.Now(),
			Metrics: []MetricPoint{dTildePoint("hot", "n1", -1)},
		}, nil
	}
	agg.mu.Lock()
	agg.sources[0].fn = agg2src
	agg.mu.Unlock()
	clk.Advance(time.Second)
	if view := agg.Collect(); view.SLO.Violated {
		t.Fatal("detector did not recover")
	}
	last := f.Events()[len(f.Events())-1]
	if last.Kind != FlightSLO || last.Detail != "recovered" {
		t.Fatalf("last event = %+v, want the recovery transition", last)
	}
	after, _ := os.Stat(target)
	if !after.ModTime().Equal(before.ModTime()) || after.Size() != before.Size() {
		t.Fatal("recovery should not rewrite the disk dump")
	}
}

// TestSLOMonitorConcurrentEvaluateStatus exercises the detector under the
// race detector: evaluations mutate the growth map while scrapes read the
// status — the /metrics-while-collecting pattern.
func TestSLOMonitorConcurrentEvaluateStatus(t *testing.T) {
	m := NewSLOMonitor(SLOConfig{TargetP99: 0.5}, 0)
	points := []MetricPoint{
		fanoutPoint("sink", "0", 0),
		e2ePoint("sink", "", 0, 100, 0),
		dTildePoint("hot", "n1", 1),
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = m.Status()
					_ = m.Events()
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		m.Evaluate(sloBase.Add(time.Duration(i)*time.Second), points)
	}
	close(stop)
	wg.Wait()
	if st := m.Status(); !st.Evaluated || !st.Violated {
		t.Fatalf("status after concurrent evaluations = %+v", st)
	}
}

// TestAggregatorConcurrentScrape collects in a loop while other goroutines
// scrape the aggregator and the bundle's registry — the live /cluster,
// /metrics, /bottlenecks, and /flightrecorder surfaces all at once.
func TestAggregatorConcurrentScrape(t *testing.T) {
	clk := clock.NewManual()
	ob := New(clk, Config{SampleEvery: -1})
	ob.Registry.GaugeFunc(MetricDTilde, "d~", map[string]string{
		"stage": "hot", "instance": "0", "node": "n1",
	}, func() float64 { return 1 })

	agg := NewAggregator(clk, SLOConfig{})
	agg.SetFlightRecorder(ob.Flight)
	agg.AddSource("local", LocalSource(ob))
	ob.Registry.GaugeFunc("gates_slo_violation", "flag", nil, func() float64 {
		if agg.Violated() {
			return 1
		}
		return 0
	})

	var wg sync.WaitGroup
	stop := make(chan struct{})
	scrape := func(fn func()) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					fn()
				}
			}
		}()
	}
	scrape(func() { _ = agg.SLOStatus() })
	scrape(func() { _ = agg.View() })
	scrape(func() { _ = agg.Violated() })
	scrape(func() { _ = ob.Registry.Snapshot() })
	scrape(func() { _ = ob.Attr().Last() })
	scrape(func() {
		ob.Flight.Record(FlightEvent{Kind: FlightStallOnset, Stage: "hot"})
		_ = ob.Flight.Events()
	})
	for i := 0; i < 100; i++ {
		clk.Advance(time.Second)
		agg.Collect()
	}
	close(stop)
	wg.Wait()
	if view := agg.View(); view.Bottlenecks == nil {
		t.Fatal("cluster view missing the attribution report")
	}
}
