package obs

import (
	"strings"
	"testing"
	"time"

	"github.com/gates-middleware/gates/internal/clock"
)

func stallPoint(name, stage string, seconds float64) MetricPoint {
	return MetricPoint{Name: name, Kind: "counter",
		Labels: map[string]string{"stage": stage, "instance": "0"},
		Value:  JSONFloat(seconds)}
}

func edgePoint(from, to string) MetricPoint {
	return MetricPoint{Name: MetricEdge, Kind: "gauge",
		Labels: map[string]string{"from": from, "to": to},
		Value:  1}
}

// constrictedPoints models a src → relay → slow → sink pipeline after
// `epoch` seconds: producers parked on slow's full input almost the whole
// epoch, relay passing the same pressure along, sink starved.
func constrictedPoints(epoch float64) []MetricPoint {
	return []MetricPoint{
		edgePoint("src", "relay"),
		edgePoint("relay", "slow"),
		edgePoint("slow", "sink"),
		stallPoint(MetricQueuePushStall, "slow", 0.9*epoch),
		stallPoint(MetricEmitStall, "slow", 0),
		stallPoint(MetricQueuePushStall, "relay", 0.85*epoch),
		stallPoint(MetricEmitStall, "relay", 0.9*epoch),
		stallPoint(MetricEmitStall, "src", 0.85*epoch),
		stallPoint(MetricQueuePopStall, "sink", 0.95*epoch),
		{Name: MetricQueueCapacity, Kind: "gauge",
			Labels: map[string]string{"stage": "slow", "instance": "0"}, Value: 64},
		{Name: "gates_queue_depth", Kind: "gauge",
			Labels: map[string]string{"stage": "slow", "instance": "0"}, Value: 64},
	}
}

func TestAttributionNamesBottleneck(t *testing.T) {
	clk := clock.NewManual()
	a := NewAttribution(clk)
	var wall int64
	a.SetNowFunc(func() int64 { return wall })

	wall = int64(10 * time.Second)
	rep := a.Observe(constrictedPoints(10))
	if rep.Bottleneck != "slow/0" {
		t.Fatalf("bottleneck = %q, want slow/0; verdicts %+v", rep.Bottleneck, rep.Verdicts)
	}
	top := rep.Verdicts[0]
	if !top.Bottleneck || top.Stage != "slow" {
		t.Fatalf("top verdict = %+v, want stage slow flagged", top)
	}
	if got := float64(top.InboundStallFrac); got < 0.85 || got > 0.95 {
		t.Fatalf("inbound stall frac = %g, want ~0.9", got)
	}
	if float64(top.EmitStallFrac) != 0 {
		t.Fatalf("slow emit stall frac = %g, want 0 (sink keeps up)", float64(top.EmitStallFrac))
	}
	if float64(top.QueueFrac) != 1 {
		t.Fatalf("queue frac = %g, want full", float64(top.QueueFrac))
	}
	if !strings.Contains(rep.Summary, "stage slow is the bottleneck") {
		t.Fatalf("summary = %q", rep.Summary)
	}
	// Downstream idleness is read through the topology edges: sink is
	// slow's only downstream and sat starved 95% of the epoch.
	if !strings.Contains(rep.Summary, "downstream idle 95%") {
		t.Fatalf("summary missing downstream idle evidence: %q", rep.Summary)
	}
	// A relay that passes pressure on must rank below the absorber.
	for _, v := range rep.Verdicts[1:] {
		if v.Bottleneck {
			t.Fatalf("second bottleneck flagged: %+v", v)
		}
	}
}

func TestAttributionEpochDeltas(t *testing.T) {
	clk := clock.NewManual()
	a := NewAttribution(clk)
	var wall int64
	a.SetNowFunc(func() int64 { return wall })

	// First epoch: 9s of stall over 10s.
	wall = int64(10 * time.Second)
	rep := a.Observe(constrictedPoints(10))
	if rep.Bottleneck == "" {
		t.Fatalf("first epoch found nothing: %+v", rep)
	}
	if got := float64(rep.EpochWallSeconds); got != 10 {
		t.Fatalf("epoch = %gs, want 10", got)
	}

	// Second epoch: the cumulative counters did not move, so the deltas
	// are zero and the verdict clears — stale pressure never lingers.
	wall = int64(20 * time.Second)
	rep = a.Observe(constrictedPoints(10))
	if rep.Bottleneck != "" {
		t.Fatalf("unchanged counters still flagged: %+v", rep)
	}
	if !strings.Contains(rep.Summary, "no bottleneck") {
		t.Fatalf("summary = %q", rep.Summary)
	}
	if got := a.Last(); got.Summary != rep.Summary {
		t.Fatalf("Last() = %+v, want most recent report", got)
	}
}

func TestAttributionNilAndEmpty(t *testing.T) {
	var a *Attribution
	if rep := a.Last(); rep == nil || rep.Summary == "" {
		t.Fatal("nil attribution must report a placeholder")
	}
	if rep := a.Observe(nil); rep == nil {
		t.Fatal("nil attribution Observe must not panic")
	}
	if rep := a.ObserveRegistry(nil); rep == nil {
		t.Fatal("nil registry must not panic")
	}

	clk := clock.NewManual()
	real := NewAttribution(clk)
	var wall int64 = int64(time.Second)
	real.SetNowFunc(func() int64 { return wall })
	wall = int64(2 * time.Second)
	rep := real.Observe(nil)
	if rep.Bottleneck != "" || len(rep.Verdicts) != 0 {
		t.Fatalf("empty snapshot produced verdicts: %+v", rep)
	}
}

func TestAttributionFractionsClamped(t *testing.T) {
	clk := clock.NewManual()
	a := NewAttribution(clk)
	var wall int64
	a.SetNowFunc(func() int64 { return wall })

	// Two producers parked simultaneously accumulate 2x the epoch in
	// stall-seconds; the fraction must clamp to 1, not read as 200%.
	wall = int64(10 * time.Second)
	rep := a.Observe([]MetricPoint{
		stallPoint(MetricQueuePushStall, "slow", 20),
	})
	if got := float64(rep.Verdicts[0].InboundStallFrac); got != 1 {
		t.Fatalf("fraction = %g, want clamped to 1", got)
	}
}
