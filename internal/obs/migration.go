package obs

import (
	"sync"
	"time"
)

// DefaultMigrationCapacity is the default retained-migration ring size.
const DefaultMigrationCapacity = 256

// DefaultLifecycleCapacity is the default retained-lifecycle ring size.
const DefaultLifecycleCapacity = 1024

// MigrationEvent records one live re-deployment of a stage instance: where
// it moved, how long the drain took, and how much state traveled with it.
type MigrationEvent struct {
	// Seq numbers events in record order across the whole trail.
	Seq uint64 `json:"seq"`
	// At is the virtual time the migration completed.
	At time.Time `json:"at"`
	// Stage and Instance identify the moved instance.
	Stage    string `json:"stage"`
	Instance int    `json:"instance"`
	// From and To are the source and destination grid nodes.
	From string `json:"from"`
	To   string `json:"to"`
	// Drain is the virtual time from the pause request until the
	// instance was parked with no packet in flight.
	Drain time.Duration `json:"drain_ns"`
	// StateBytes is the size of the serialized processor state moved.
	StateBytes int `json:"state_bytes"`
	// QueuedPackets and QueuedBytes describe the input-queue backlog
	// that moved (logically) with the instance.
	QueuedPackets int `json:"queued_packets"`
	QueuedBytes   int `json:"queued_bytes"`
	// Reason distinguishes operator-initiated moves ("manual") from
	// rebalancer decisions ("rebalance").
	Reason string `json:"reason,omitempty"`
}

// LifecycleEvent records one stage lifecycle transition (see
// pipeline.StageState): running → draining → paused → running is the
// audit signature of a live migration.
type LifecycleEvent struct {
	// Seq numbers events in record order across the whole trail.
	Seq uint64 `json:"seq"`
	// At is the virtual time of the transition.
	At time.Time `json:"at"`
	// Stage, Instance, Node identify the transitioning instance.
	Stage    string `json:"stage"`
	Instance int    `json:"instance"`
	Node     string `json:"node,omitempty"`
	// From and To are the state names.
	From string `json:"from"`
	To   string `json:"to"`
}

// ring is the bounded, concurrency-safe event buffer shared by the
// migration and lifecycle trails; stamp assigns the per-trail sequence
// number at record time.
type ring[T any] struct {
	mu    sync.Mutex
	buf   []T
	next  int
	count int
	total uint64
	stamp func(*T, uint64)
}

func newRing[T any](capacity int, def int, stamp func(*T, uint64)) *ring[T] {
	if capacity <= 0 {
		capacity = def
	}
	return &ring[T]{buf: make([]T, capacity), stamp: stamp}
}

func (r *ring[T]) record(ev T) {
	r.mu.Lock()
	r.stamp(&ev, r.total)
	r.total++
	r.buf[r.next] = ev
	r.next = (r.next + 1) % len(r.buf)
	if r.count < len(r.buf) {
		r.count++
	}
	r.mu.Unlock()
}

func (r *ring[T]) totalCount() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

func (r *ring[T]) events() []T {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]T, 0, r.count)
	start := r.next - r.count
	for i := 0; i < r.count; i++ {
		idx := (start + i + len(r.buf)) % len(r.buf)
		out = append(out, r.buf[idx])
	}
	return out
}

func (r *ring[T]) last() (T, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var zero T
	if r.count == 0 {
		return zero, false
	}
	return r.buf[(r.next-1+len(r.buf))%len(r.buf)], true
}

// MigrationTrail is a bounded ring of migration events, safe for
// concurrent use. A nil *MigrationTrail is valid and records nothing.
type MigrationTrail struct{ r *ring[MigrationEvent] }

// NewMigrationTrail returns a trail retaining up to capacity events (<=0
// selects DefaultMigrationCapacity).
func NewMigrationTrail(capacity int) *MigrationTrail {
	return &MigrationTrail{r: newRing(capacity, DefaultMigrationCapacity,
		func(ev *MigrationEvent, n uint64) { ev.Seq = n })}
}

// Record appends ev, stamping its Seq. A no-op on a nil trail.
func (t *MigrationTrail) Record(ev MigrationEvent) {
	if t == nil {
		return
	}
	t.r.record(ev)
}

// Total returns how many events were ever recorded (retained or evicted).
func (t *MigrationTrail) Total() uint64 {
	if t == nil {
		return 0
	}
	return t.r.totalCount()
}

// Events returns the retained events, oldest first.
func (t *MigrationTrail) Events() []MigrationEvent {
	if t == nil {
		return nil
	}
	return t.r.events()
}

// Last returns the most recent event, or false when the trail is empty.
func (t *MigrationTrail) Last() (MigrationEvent, bool) {
	if t == nil {
		return MigrationEvent{}, false
	}
	return t.r.last()
}

// LifecycleTrail is a bounded ring of stage lifecycle transitions, safe
// for concurrent use. A nil *LifecycleTrail is valid and records nothing.
type LifecycleTrail struct{ r *ring[LifecycleEvent] }

// NewLifecycleTrail returns a trail retaining up to capacity events (<=0
// selects DefaultLifecycleCapacity).
func NewLifecycleTrail(capacity int) *LifecycleTrail {
	return &LifecycleTrail{r: newRing(capacity, DefaultLifecycleCapacity,
		func(ev *LifecycleEvent, n uint64) { ev.Seq = n })}
}

// Record appends ev, stamping its Seq. A no-op on a nil trail.
func (t *LifecycleTrail) Record(ev LifecycleEvent) {
	if t == nil {
		return
	}
	t.r.record(ev)
}

// Total returns how many events were ever recorded (retained or evicted).
func (t *LifecycleTrail) Total() uint64 {
	if t == nil {
		return 0
	}
	return t.r.totalCount()
}

// Events returns the retained events, oldest first.
func (t *LifecycleTrail) Events() []LifecycleEvent {
	if t == nil {
		return nil
	}
	return t.r.events()
}

// ForStage returns the retained transitions of one stage instance, oldest
// first — the per-instance lifecycle trace a migration test asserts on.
func (t *LifecycleTrail) ForStage(stage string, instance int) []LifecycleEvent {
	var out []LifecycleEvent
	for _, ev := range t.Events() {
		if ev.Stage == stage && ev.Instance == instance {
			out = append(out, ev)
		}
	}
	return out
}
