package obs

import (
	"time"

	"github.com/gates-middleware/gates/internal/clock"
)

// DefaultDecisionCapacity is the default retained decision-log ring size.
const DefaultDecisionCapacity = 1024

// Decision kinds. Every control-plane verdict the middleware takes is one
// of these; per-packet data-plane work is never logged here.
const (
	// DecisionPlacement is one Plan-time stage-instance placement.
	DecisionPlacement = "placement"
	// DecisionRebalance is one Rebalancer verdict: a move, or a reasoned
	// skip (cooldown, below-threshold, budget).
	DecisionRebalance = "rebalance"
	// DecisionSLO is one SLO-detector evaluation verdict.
	DecisionSLO = "slo"
	// DecisionRecovery is one recovery-controller verdict: a dead node
	// detected and its instances re-planned, restored, and replayed.
	DecisionRecovery = "recovery"
	// DecisionPolicy is a policy-document lifecycle event (a load, a
	// rejected reload).
	DecisionPolicy = "policy"
)

// DecisionEvent is one OPA-style decision-log entry: what was decided, the
// policy version that produced it, the rule that fired, and the full input
// context the rule saw — enough to replay or dispute the decision later.
type DecisionEvent struct {
	// Seq numbers events in record order across the whole log.
	Seq uint64 `json:"seq"`
	// At is the virtual time of the decision (stamped at Record when the
	// caller left it zero).
	At time.Time `json:"at"`
	// Kind classifies the decision (Decision* constants).
	Kind string `json:"kind"`
	// PolicyVersion names the policy document version that produced the
	// decision.
	PolicyVersion string `json:"policy_version,omitempty"`
	// Rule names the rule that fired ("threshold", "cooldown",
	// "near-source", a named placement rule, ...).
	Rule string `json:"rule,omitempty"`
	// Stage, Instance, Node identify the instance the decision is about,
	// when any.
	Stage    string `json:"stage,omitempty"`
	Instance int    `json:"instance,omitempty"`
	Node     string `json:"node,omitempty"`
	// Outcome is the verdict ("assigned", "move", "skip: cooldown",
	// "violated", "ok", "loaded", ...).
	Outcome string `json:"outcome"`
	// Input is the full evaluation context the rule consumed (costs,
	// thresholds, requirements, measured signals).
	Input map[string]any `json:"input,omitempty"`
}

// DecisionTrail is the bounded decision log behind /decisions, safe for
// concurrent use. A nil *DecisionTrail is valid and records nothing —
// control-plane code never needs a nil check.
type DecisionTrail struct {
	clk clock.Clock
	r   *ring[DecisionEvent]
}

// NewDecisionTrail returns a log retaining up to capacity decisions (<=0
// selects DefaultDecisionCapacity), timestamping on clk.
func NewDecisionTrail(clk clock.Clock, capacity int) *DecisionTrail {
	return &DecisionTrail{
		clk: clk,
		r: newRing(capacity, DefaultDecisionCapacity,
			func(ev *DecisionEvent, n uint64) { ev.Seq = n }),
	}
}

// Record appends ev, stamping Seq and — when the caller left it zero — At
// with the current virtual time. A no-op on a nil trail.
func (t *DecisionTrail) Record(ev DecisionEvent) {
	if t == nil {
		return
	}
	if ev.At.IsZero() {
		ev.At = t.clk.Now()
	}
	t.r.record(ev)
}

// Total returns how many decisions were ever recorded (retained or
// evicted).
func (t *DecisionTrail) Total() uint64 {
	if t == nil {
		return 0
	}
	return t.r.totalCount()
}

// Events returns the retained decisions, oldest first.
func (t *DecisionTrail) Events() []DecisionEvent {
	if t == nil {
		return nil
	}
	return t.r.events()
}

// Last returns the most recent decision, or false when the log is empty.
func (t *DecisionTrail) Last() (DecisionEvent, bool) {
	if t == nil {
		return DecisionEvent{}, false
	}
	return t.r.last()
}
