package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/gates-middleware/gates/internal/clock"
)

// Kind discriminates metric families.
type Kind int

const (
	// KindCounter is a monotonically non-decreasing cumulative count.
	KindCounter Kind = iota
	// KindGauge is an instantaneous value that may move either way.
	KindGauge
	// KindHistogram is a bucketed distribution with sum and count.
	KindHistogram
)

// String returns the Prometheus TYPE name.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// Registry is the process-wide metric store every layer publishes into.
// Instruments come in two flavors: owned (Counter/Gauge/Histogram, updated
// on the hot path with atomic operations) and callback (CounterFunc /
// GaugeFunc, evaluated only at scrape time — zero hot-path cost, which is
// how existing per-component counters like queue.Stats are exposed without
// double-counting every increment).
//
// Registration is idempotent: asking for an existing (name, labels) series
// returns the live instrument, and re-registering a callback replaces the
// function — exactly what a restarted stage needs so its fresh counters
// take over the series. Registering the same name with a different Kind
// panics, since that is always a programming error.
type Registry struct {
	clk clock.Clock

	mu       sync.RWMutex
	families map[string]*family
}

type family struct {
	name, help string
	kind       Kind

	mu     sync.Mutex
	series map[string]*series
}

type series struct {
	labels  []labelPair
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fnMu    sync.Mutex
	fn      func() float64
}

type labelPair struct{ name, value string }

func (s *series) value() float64 {
	switch {
	case s.counter != nil:
		return s.counter.Value()
	case s.gauge != nil:
		return s.gauge.Value()
	default:
		s.fnMu.Lock()
		fn := s.fn
		s.fnMu.Unlock()
		if fn == nil {
			return 0
		}
		return fn()
	}
}

// NewRegistry returns an empty registry on clk; the clock timestamps
// snapshots and drives Time'd histogram observations.
func NewRegistry(clk clock.Clock) *Registry {
	if clk == nil {
		panic("obs: NewRegistry requires a clock")
	}
	return &Registry{clk: clk, families: make(map[string]*family)}
}

// Clock returns the registry's time base.
func (r *Registry) Clock() clock.Clock { return r.clk }

func (r *Registry) familyFor(name, help string, kind Kind) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, series: make(map[string]*series)}
		r.families[name] = f
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered as %v (was %v)", name, kind, f.kind))
	}
	return f
}

func canonical(labels map[string]string) (string, []labelPair) {
	if len(labels) == 0 {
		return "", nil
	}
	pairs := make([]labelPair, 0, len(labels))
	for k, v := range labels {
		pairs = append(pairs, labelPair{k, v})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].name < pairs[j].name })
	var b strings.Builder
	for _, p := range pairs {
		b.WriteString(p.name)
		b.WriteByte('=')
		b.WriteString(p.value)
		b.WriteByte(',')
	}
	return b.String(), pairs
}

// Counter registers (or retrieves) an owned counter series.
func (r *Registry) Counter(name, help string, labels map[string]string) *Counter {
	f := r.familyFor(name, help, KindCounter)
	key, pairs := canonical(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok && s.counter != nil {
		return s.counter
	}
	c := &Counter{}
	f.series[key] = &series{labels: pairs, counter: c}
	return c
}

// CounterFunc registers a counter series whose value is fn(), evaluated at
// scrape time. Re-registering an existing series replaces fn.
func (r *Registry) CounterFunc(name, help string, labels map[string]string, fn func() float64) {
	r.registerFunc(name, help, KindCounter, labels, fn)
}

// Gauge registers (or retrieves) an owned gauge series.
func (r *Registry) Gauge(name, help string, labels map[string]string) *Gauge {
	f := r.familyFor(name, help, KindGauge)
	key, pairs := canonical(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok && s.gauge != nil {
		return s.gauge
	}
	g := &Gauge{}
	f.series[key] = &series{labels: pairs, gauge: g}
	return g
}

// GaugeFunc registers a gauge series whose value is fn(), evaluated at
// scrape time. Re-registering an existing series replaces fn.
func (r *Registry) GaugeFunc(name, help string, labels map[string]string, fn func() float64) {
	r.registerFunc(name, help, KindGauge, labels, fn)
}

func (r *Registry) registerFunc(name, help string, kind Kind, labels map[string]string, fn func() float64) {
	f := r.familyFor(name, help, kind)
	key, pairs := canonical(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		s.fnMu.Lock()
		s.fn = fn
		s.fnMu.Unlock()
		return
	}
	f.series[key] = &series{labels: pairs, fn: fn}
}

// DefBuckets is the default histogram bucketing: virtual-second latencies
// from 100µs to ~100s in powers of ~4.6.
var DefBuckets = []float64{1e-4, 5e-4, 1e-3, 5e-3, 2.5e-2, 1e-1, 5e-1, 2.5, 10, 100}

// Histogram registers (or retrieves) a histogram series. Nil buckets select
// DefBuckets; bounds must be strictly increasing.
func (r *Registry) Histogram(name, help string, buckets []float64, labels map[string]string) *Histogram {
	f := r.familyFor(name, help, KindHistogram)
	key, pairs := canonical(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok && s.hist != nil {
		return s.hist
	}
	h := newHistogram(buckets)
	f.series[key] = &series{labels: pairs, hist: h}
	return h
}

// Time starts a virtual-clock timer; the returned function observes the
// elapsed virtual seconds into h. Usage: defer reg.Time(h)().
func (r *Registry) Time(h *Histogram) func() {
	start := r.clk.Now()
	return func() { h.Observe(r.clk.Now().Sub(start).Seconds()) }
}

// Value returns the current value of one series (evaluating its callback if
// it has one) and whether the series exists. Histogram series report their
// observation count.
func (r *Registry) Value(name string, labels map[string]string) (float64, bool) {
	r.mu.RLock()
	f, ok := r.families[name]
	r.mu.RUnlock()
	if !ok {
		return 0, false
	}
	key, _ := canonical(labels)
	f.mu.Lock()
	s, ok := f.series[key]
	f.mu.Unlock()
	if !ok {
		return 0, false
	}
	if s.hist != nil {
		_, count, _ := s.hist.State()
		return float64(count), true
	}
	return s.value(), true
}

// JSONFloat is a float64 that survives JSON encoding when non-finite:
// NaN and ±Inf — legal metric values (a d̃ gauge before its first
// observation, every histogram's +Inf bucket bound) — marshal as the
// strings "NaN", "+Inf", and "-Inf" instead of aborting the encoder.
type JSONFloat float64

// MarshalJSON implements json.Marshaler.
func (f JSONFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	switch {
	case math.IsNaN(v):
		return []byte(`"NaN"`), nil
	case math.IsInf(v, 1):
		return []byte(`"+Inf"`), nil
	case math.IsInf(v, -1):
		return []byte(`"-Inf"`), nil
	}
	return json.Marshal(v)
}

// UnmarshalJSON implements json.Unmarshaler, accepting both numbers and the
// non-finite string forms MarshalJSON produces.
func (f *JSONFloat) UnmarshalJSON(b []byte) error {
	var v float64
	if err := json.Unmarshal(b, &v); err == nil {
		*f = JSONFloat(v)
		return nil
	}
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	switch s {
	case "NaN":
		*f = JSONFloat(math.NaN())
	case "+Inf", "Inf":
		*f = JSONFloat(math.Inf(1))
	case "-Inf":
		*f = JSONFloat(math.Inf(-1))
	default:
		return fmt.Errorf("obs: invalid float %q", s)
	}
	return nil
}

// BucketCount is one cumulative histogram bucket in a snapshot.
type BucketCount struct {
	// UpperBound is the bucket's inclusive upper bound (+Inf last).
	UpperBound JSONFloat `json:"le"`
	// Count is the cumulative observation count at or below UpperBound.
	Count uint64 `json:"count"`
}

// MetricPoint is one series in a JSON snapshot.
type MetricPoint struct {
	Name    string            `json:"name"`
	Kind    string            `json:"kind"`
	Labels  map[string]string `json:"labels,omitempty"`
	Value   JSONFloat         `json:"value"`
	Sum     JSONFloat         `json:"sum,omitempty"`
	Buckets []BucketCount     `json:"buckets,omitempty"`
	// Quantiles carries interpolated percentiles (p50/p95/p99) for
	// histogram series, so snapshot consumers need not re-derive them.
	Quantiles map[string]JSONFloat `json:"quantiles,omitempty"`
}

// pointQuantiles derives the exposition percentiles from cumulative
// buckets; nil for empty histograms.
func pointQuantiles(buckets []BucketCount, count uint64) map[string]JSONFloat {
	if count == 0 {
		return nil
	}
	out := make(map[string]JSONFloat, len(quantilePoints))
	for _, qp := range quantilePoints {
		out[qp.Key] = JSONFloat(QuantileFromBuckets(buckets, count, qp.Q))
	}
	return out
}

// Snapshot evaluates every series (including callbacks) and returns them
// sorted by name then label key — the JSON face of the registry.
func (r *Registry) Snapshot() []MetricPoint {
	var out []MetricPoint
	for _, f := range r.sortedFamilies() {
		for _, key := range f.sortedKeys() {
			f.mu.Lock()
			s := f.series[key]
			f.mu.Unlock()
			if s == nil {
				continue
			}
			p := MetricPoint{Name: f.name, Kind: f.kind.String()}
			if len(s.labels) > 0 {
				p.Labels = make(map[string]string, len(s.labels))
				for _, lp := range s.labels {
					p.Labels[lp.name] = lp.value
				}
			}
			if s.hist != nil {
				sum, count, buckets := s.hist.State()
				p.Value = JSONFloat(count)
				p.Sum = JSONFloat(sum)
				p.Buckets = buckets
				p.Quantiles = pointQuantiles(buckets, count)
			} else {
				p.Value = JSONFloat(s.value())
			}
			out = append(out, p)
		}
	}
	return out
}

func (r *Registry) sortedFamilies() []*family {
	r.mu.RLock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

func (f *family) sortedKeys() []string {
	f.mu.Lock()
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	f.mu.Unlock()
	sort.Strings(keys)
	return keys
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): HELP and TYPE lines per family, one sample line
// per series, histogram expanded to _bucket/_sum/_count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.sortedFamilies() {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, key := range f.sortedKeys() {
			f.mu.Lock()
			s := f.series[key]
			f.mu.Unlock()
			if s == nil {
				continue
			}
			if err := writeSeries(w, f, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, f *family, s *series) error {
	if s.hist == nil {
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, formatLabels(s.labels, "", 0), formatValue(s.value()))
		return err
	}
	sum, count, buckets := s.hist.State()
	for _, b := range buckets {
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, formatLabels(s.labels, "le", float64(b.UpperBound)), b.Count); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, formatLabels(s.labels, "", 0), formatValue(sum)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, formatLabels(s.labels, "", 0), count); err != nil {
		return err
	}
	// Interpolated percentiles ride along as plain samples so a curl of
	// /metrics answers "what is the p99" without a query engine.
	for _, qp := range quantilePoints {
		v := QuantileFromBuckets(buckets, count, qp.Q)
		if _, err := fmt.Fprintf(w, "%s_%s%s %s\n", f.name, qp.Key, formatLabels(s.labels, "", 0), formatValue(v)); err != nil {
			return err
		}
	}
	return nil
}

func formatLabels(pairs []labelPair, le string, bound float64) string {
	if len(pairs) == 0 && le == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		// %q covers the exposition format's escaping rules (backslash,
		// quote, newline).
		fmt.Fprintf(&b, "%s=%q", p.name, p.value)
	}
	if le != "" {
		if len(pairs) > 0 {
			b.WriteByte(',')
		}
		if math.IsInf(bound, +1) {
			b.WriteString(`le="+Inf"`)
		} else {
			fmt.Fprintf(&b, "le=%q", formatValue(bound))
		}
	}
	b.WriteByte('}')
	return b.String()
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return fmt.Sprintf("%g", v)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// Counter is a monotonically non-decreasing metric. The zero value is
// usable; all methods are safe for concurrent use.
type Counter struct{ bits atomic.Uint64 }

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by v; negative v is ignored (counters never go
// down).
func (c *Counter) Add(v float64) {
	if v < 0 {
		return
	}
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is an instantaneous value. The zero value is usable; all methods
// are safe for concurrent use.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add moves the gauge by v (negative moves it down).
func (g *Gauge) Add(v float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution. Observations are atomic; State
// assembles a consistent-enough snapshot for exposition (counts may trail
// sum by in-flight observations, as in every lock-free histogram).
type Histogram struct {
	bounds  []float64 // strictly increasing upper bounds; +Inf is implicit
	counts  []atomic.Uint64
	sumBits atomic.Uint64

	// nsBounds are the bounds in integer nanoseconds (saturating), and
	// lut[(len<<3)|sub] is the first bucket a duration can land in given
	// its binary magnitude (bits.Len64) plus the three bits below the
	// leading one — 8 sub-cells per octave. A cell spans a ratio of 9/8 =
	// 1.125, below the ~1.155 growth of the latency buckets, so the
	// trailing linear scan almost never needs more than one step; the scan
	// remains for correctness with arbitrary (e.g. linear) bucket layouts.
	nsBounds []int64
	lut [65 * 8]int16
}

func newHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram buckets must be strictly increasing")
		}
	}
	h := &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
	h.nsBounds = make([]int64, len(bounds))
	for i, b := range bounds {
		switch ns := b * 1e9; {
		case ns >= math.MaxInt64:
			h.nsBounds[i] = math.MaxInt64
		case ns <= math.MinInt64:
			h.nsBounds[i] = math.MinInt64
		default:
			h.nsBounds[i] = int64(math.Floor(ns))
		}
	}
	for l := 1; l <= 64; l++ {
		for k := 0; k < 8; k++ {
			// Lowest duration that maps to cell (l, k); octaves shorter
			// than the 3 sub-bits collapse onto their octave floor.
			cellLo := uint64(1) << (l - 1)
			if l > 3 {
				cellLo = uint64(8|k) << (l - 4)
			}
			i := sort.Search(len(h.nsBounds), func(i int) bool {
				b := h.nsBounds[i]
				return b > 0 && uint64(b) >= cellLo
			})
			h.lut[l<<3|k] = int16(i)
		}
	}
	return h
}

// bucketIndexNS returns the bucket a duration of ns nanoseconds lands in,
// matching Observe's "first bound >= value" convention.
func (h *Histogram) bucketIndexNS(ns int64) int {
	nb := h.nsBounds
	if len(nb) == 0 || ns <= nb[0] {
		return 0
	}
	if ns > nb[len(nb)-1] {
		return len(nb) // the implicit +Inf bucket
	}
	if ns <= 0 {
		// Negative-bound buckets; off the hot path.
		for i, b := range nb {
			if b >= ns {
				return i
			}
		}
		return len(nb)
	}
	u := uint64(ns)
	l := bits.Len64(u)
	k := 0
	if l > 3 {
		k = int(u>>(l-4)) & 7
	}
	i := int(h.lut[l<<3|k])
	for nb[i] < ns {
		i++
	}
	return i
}

// Observe records v.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.addSum(v)
}

func (h *Histogram) addSum(v float64) {
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Scratch is a goroutine-local observation buffer over one histogram.
// Per-packet hot loops cannot afford the shared histogram's atomics, so a
// stage buckets every observation here — an integer subtract, a table
// lookup, a bounded scan, no atomics — and Flush folds the accumulated
// counts into the histogram with one atomic add per *touched* bucket per
// batch. Every observation is still recorded individually; only the
// cross-goroutine hand-off is coalesced. Not safe for concurrent use: one
// Scratch belongs to one goroutine.
type Scratch struct {
	h       *Histogram
	counts  []uint32
	touched []int32
	sumNS   int64
}

// Scratch returns a new observation buffer feeding this histogram.
func (h *Histogram) Scratch() *Scratch {
	return &Scratch{h: h, counts: make([]uint32, len(h.bounds)+1)}
}

// ObserveNS records a duration in nanoseconds.
func (s *Scratch) ObserveNS(ns int64) {
	s.observeAt(s.h.bucketIndexNS(ns), ns)
}

func (s *Scratch) observeAt(i int, ns int64) {
	if s.counts[i] == 0 {
		s.touched = append(s.touched, int32(i))
	}
	s.counts[i]++
	s.sumNS += ns
}

// ObserveNSBoth records one duration into both scratches, bucketing it
// once. Valid only when both scratches' histograms share identical bounds
// — as a stage's hop/e2e latency pair does — where the first hop past a
// source observes the same value twice.
func ObserveNSBoth(a, b *Scratch, ns int64) {
	i := a.h.bucketIndexNS(ns)
	a.observeAt(i, ns)
	b.observeAt(i, ns)
}

// Flush publishes the buffered observations into the shared histogram.
func (s *Scratch) Flush() {
	if len(s.touched) == 0 {
		return
	}
	for _, i := range s.touched {
		s.h.counts[i].Add(uint64(s.counts[i]))
		s.counts[i] = 0
	}
	s.touched = s.touched[:0]
	s.h.addSum(float64(s.sumNS) * 1e-9)
	s.sumNS = 0
}

// State returns the sum, total count, and cumulative buckets (ending with
// the +Inf bucket).
func (h *Histogram) State() (sum float64, count uint64, buckets []BucketCount) {
	buckets = make([]BucketCount, len(h.bounds)+1)
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		bound := math.Inf(+1)
		if i < len(h.bounds) {
			bound = h.bounds[i]
		}
		buckets[i] = BucketCount{UpperBound: JSONFloat(bound), Count: cum}
	}
	return math.Float64frombits(h.sumBits.Load()), cum, buckets
}

// SinceSeconds returns the virtual seconds elapsed since start on clk — the
// helper instrumented code uses to observe durations into histograms.
func SinceSeconds(clk clock.Clock, start time.Time) float64 {
	return clk.Now().Sub(start).Seconds()
}
