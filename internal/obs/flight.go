package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"github.com/gates-middleware/gates/internal/clock"
)

// DefaultFlightCapacity is the default retained flight-event ring size.
const DefaultFlightCapacity = 2048

// FlightKind classifies a flight-recorder event.
type FlightKind string

// The event kinds the middleware records. The set is deliberately small:
// the flight recorder keeps rare, state-changing moments (what happened
// around an incident), not per-packet telemetry (that is the registry's
// job).
const (
	// FlightLifecycle is a stage lifecycle transition (running → draining
	// → paused → running ...).
	FlightLifecycle FlightKind = "lifecycle"
	// FlightAdaptation is an adaptation epoch that actually moved at
	// least one parameter.
	FlightAdaptation FlightKind = "adaptation"
	// FlightMigration is a completed live re-deployment of an instance.
	FlightMigration FlightKind = "migration"
	// FlightSLO is an SLO state transition (violated or recovered).
	FlightSLO FlightKind = "slo"
	// FlightPoolExhausted is the onset of packet-pool exhaustion: a
	// refill found the pool empty and the allocator took over.
	FlightPoolExhausted FlightKind = "pool-exhausted"
	// FlightStallOnset is the onset of an emit stall: an emission found a
	// downstream input buffer full after a period of free flow.
	FlightStallOnset FlightKind = "stall-onset"
	// FlightDump marks a disk snapshot of the recorder itself (SLO
	// violation or SIGQUIT), so a later dump shows when earlier ones ran.
	FlightDump FlightKind = "dump"
	// FlightPolicy is a policy-document lifecycle moment: a version
	// loaded (hot reload) or a reload rejected by validation.
	FlightPolicy FlightKind = "policy"
	// FlightFault is a fault-plane event: a node kill or heal, a network
	// partition, or a loss/reorder injection on a link.
	FlightFault FlightKind = "fault"
	// FlightCheckpoint is one completed checkpoint round (Value carries
	// the number of instances captured).
	FlightCheckpoint FlightKind = "checkpoint"
	// FlightRecovery is a completed recovery of an instance from a dead
	// node (Value carries the number of replayed packets).
	FlightRecovery FlightKind = "recovery"
	// FlightDecision mirrors a state-changing control-plane decision
	// (a placement, a rebalance move) from the decision log, so the
	// recorder shows what the control plane did around an incident.
	FlightDecision FlightKind = "decision"
)

// FlightEvent is one recorded moment. Events are plain values — recording
// one is a struct copy into a preallocated ring slot, no allocation.
type FlightEvent struct {
	// Seq numbers events in record order across the recorder's lifetime.
	Seq uint64 `json:"seq"`
	// At is the virtual time of the event (stamped at Record).
	At time.Time `json:"at"`
	// Kind classifies the event.
	Kind FlightKind `json:"kind"`
	// Stage, Instance, Node identify the instance involved, when any.
	Stage    string `json:"stage,omitempty"`
	Instance int    `json:"instance,omitempty"`
	Node     string `json:"node,omitempty"`
	// Detail is a short human-readable description ("emit blocked: input
	// buffer of sink full", "running → draining", ...).
	Detail string `json:"detail,omitempty"`
	// Value carries an optional numeric payload (e.g. an adjusted
	// parameter's new value).
	Value float64 `json:"value,omitempty"`
}

// FlightRecorder is the bounded in-memory event ring behind /flightrecorder:
// always on, allocation-free on the record path, safe for concurrent use. A
// nil *FlightRecorder is valid and records nothing, so unobserved code paths
// need no checks.
type FlightRecorder struct {
	clk clock.Clock
	r   *ring[FlightEvent]

	mu       sync.Mutex
	dumpPath string
	dumps    uint64
	lastErr  string
}

// NewFlightRecorder returns a recorder retaining up to capacity events (<=0
// selects DefaultFlightCapacity), timestamping on clk.
func NewFlightRecorder(clk clock.Clock, capacity int) *FlightRecorder {
	return &FlightRecorder{
		clk: clk,
		r: newRing(capacity, DefaultFlightCapacity,
			func(ev *FlightEvent, n uint64) { ev.Seq = n }),
	}
}

// Record appends ev, stamping Seq and — when the caller left it zero — At
// with the current virtual time. A no-op on a nil recorder.
func (f *FlightRecorder) Record(ev FlightEvent) {
	if f == nil {
		return
	}
	if ev.At.IsZero() {
		ev.At = f.clk.Now()
	}
	f.r.record(ev)
}

// Total returns how many events were ever recorded (retained or evicted).
func (f *FlightRecorder) Total() uint64 {
	if f == nil {
		return 0
	}
	return f.r.totalCount()
}

// Events returns the retained events, oldest first.
func (f *FlightRecorder) Events() []FlightEvent {
	if f == nil {
		return nil
	}
	return f.r.events()
}

// SetDumpPath sets the file DumpToDisk writes. Empty (the default)
// disables disk snapshots.
func (f *FlightRecorder) SetDumpPath(path string) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.dumpPath = path
	f.mu.Unlock()
}

// flightDump is the JSON envelope /flightrecorder and disk snapshots share.
type flightDump struct {
	Total    uint64        `json:"total"`
	Capacity int           `json:"capacity"`
	Dumps    uint64        `json:"dumps"`
	DumpErr  string        `json:"dumpErr,omitempty"`
	Events   []FlightEvent `json:"events"`
}

func (f *FlightRecorder) dump() flightDump {
	d := flightDump{
		Total:    f.Total(),
		Capacity: len(f.r.buf),
		Events:   f.Events(),
	}
	f.mu.Lock()
	d.Dumps = f.dumps
	d.DumpErr = f.lastErr
	f.mu.Unlock()
	return d
}

// WriteJSON writes the recorder contents as indented JSON — the same
// envelope /flightrecorder serves and DumpToDisk snapshots.
func (f *FlightRecorder) WriteJSON(w io.Writer) error {
	if f == nil {
		_, err := io.WriteString(w, "{}\n")
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f.dump())
}

// DumpToDisk snapshots the recorder to the configured dump path,
// prepending a FlightDump event naming the reason ("slo-violation",
// "sigquit"). It returns the path written, or "" when no path is
// configured. Errors are remembered (exposed in the JSON envelope) as well
// as returned: the callers are signal handlers and the aggregator loop,
// which have nowhere good to put them.
func (f *FlightRecorder) DumpToDisk(reason string) (string, error) {
	if f == nil {
		return "", nil
	}
	f.mu.Lock()
	path := f.dumpPath
	f.mu.Unlock()
	if path == "" {
		return "", nil
	}
	f.Record(FlightEvent{Kind: FlightDump, Detail: reason})
	// Write-then-rename in the target directory (same filesystem) so a
	// crash mid-dump never leaves a truncated snapshot at the path.
	tmp, err := os.CreateTemp(filepath.Dir(path), ".gates-flight-*")
	if err == nil {
		err = f.WriteJSON(tmp)
		if cerr := tmp.Close(); err == nil {
			err = cerr
		}
		if err == nil {
			err = os.Rename(tmp.Name(), path)
		}
		if err != nil {
			os.Remove(tmp.Name())
		}
	}
	f.mu.Lock()
	if err != nil {
		f.lastErr = err.Error()
	} else {
		f.dumps++
		f.lastErr = ""
	}
	f.mu.Unlock()
	if err != nil {
		return "", fmt.Errorf("obs: flight dump %s: %w", path, err)
	}
	return path, nil
}
