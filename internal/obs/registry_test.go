package obs

import (
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/gates-middleware/gates/internal/clock"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry(clock.NewManual())
	c := r.Counter("reqs_total", "requests", map[string]string{"stage": "a"})
	c.Inc()
	c.Add(2.5)
	c.Add(-10) // ignored: counters never go down
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %v, want 3.5", got)
	}
	// Idempotent re-registration returns the same instrument.
	if again := r.Counter("reqs_total", "requests", map[string]string{"stage": "a"}); again != c {
		t.Fatal("re-registration returned a different counter")
	}

	g := r.Gauge("depth", "queue depth", nil)
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %v, want 4", got)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry(clock.NewManual())
	r.Counter("x_total", "", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("gauge re-registration of a counter name did not panic")
		}
	}()
	r.Gauge("x_total", "", nil)
}

func TestFuncReplacementOnReregistration(t *testing.T) {
	r := NewRegistry(clock.NewManual())
	labels := map[string]string{"stage": "s", "instance": "0"}
	r.CounterFunc("items_total", "", labels, func() float64 { return 100 })
	if v, ok := r.Value("items_total", labels); !ok || v != 100 {
		t.Fatalf("Value = %v, %v", v, ok)
	}
	// A restarted component re-registers: the new callback must win so the
	// series follows the live counters.
	r.CounterFunc("items_total", "", labels, func() float64 { return 5 })
	if v, _ := r.Value("items_total", labels); v != 5 {
		t.Fatalf("after replacement Value = %v, want 5", v)
	}
}

func TestValueMissingSeries(t *testing.T) {
	r := NewRegistry(clock.NewManual())
	if _, ok := r.Value("nope", nil); ok {
		t.Fatal("missing family reported ok")
	}
	r.Counter("present", "", map[string]string{"a": "1"})
	if _, ok := r.Value("present", map[string]string{"a": "2"}); ok {
		t.Fatal("missing series reported ok")
	}
}

func TestHistogramBucketsAndTiming(t *testing.T) {
	clk := clock.NewManual()
	r := NewRegistry(clk)
	h := r.Histogram("latency_seconds", "", []float64{0.1, 1, 10}, nil)
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	sum, count, buckets := h.State()
	if count != 5 {
		t.Fatalf("count = %d", count)
	}
	if sum != 56.05 {
		t.Fatalf("sum = %v", sum)
	}
	wantCum := []uint64{1, 3, 4, 5}
	for i, b := range buckets {
		if b.Count != wantCum[i] {
			t.Fatalf("bucket %d = %d, want %d", i, b.Count, wantCum[i])
		}
	}

	// Time observes virtual elapsed seconds, driven by the Manual clock.
	done := r.Time(h)
	clk.Advance(2 * time.Second)
	done()
	_, count, _ = h.State()
	if count != 6 {
		t.Fatalf("count after Time = %d", count)
	}
	sum, _, _ = h.State()
	if sum != 58.05 {
		t.Fatalf("sum after Time = %v (2 virtual seconds expected)", sum)
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry(clock.NewManual())
	r.Counter("gates_items_total", "items processed", map[string]string{"stage": "sink", "instance": "0"}).Add(42)
	r.GaugeFunc("gates_depth", "queue depth", map[string]string{"stage": "sink"}, func() float64 { return 7 })
	h := r.Histogram("gates_batch_seconds", "batch time", []float64{0.5}, nil)
	h.Observe(0.25)
	h.Observe(2)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP gates_items_total items processed",
		"# TYPE gates_items_total counter",
		`gates_items_total{instance="0",stage="sink"} 42`,
		"# TYPE gates_depth gauge",
		`gates_depth{stage="sink"} 7`,
		"# TYPE gates_batch_seconds histogram",
		`gates_batch_seconds_bucket{le="0.5"} 1`,
		`gates_batch_seconds_bucket{le="+Inf"} 2`,
		"gates_batch_seconds_sum 2.25",
		"gates_batch_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestSnapshotSortedAndLabeled(t *testing.T) {
	r := NewRegistry(clock.NewManual())
	r.Counter("b_total", "", nil).Inc()
	r.Counter("a_total", "", map[string]string{"k": "v"}).Add(3)
	snap := r.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d points", len(snap))
	}
	if snap[0].Name != "a_total" || snap[0].Value != 3 || snap[0].Labels["k"] != "v" {
		t.Fatalf("first point = %+v", snap[0])
	}
	if snap[1].Name != "b_total" || snap[1].Value != 1 {
		t.Fatalf("second point = %+v", snap[1])
	}
}

func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry(clock.NewManual())
	c := r.Counter("c_total", "", nil)
	g := r.Gauge("g", "", nil)
	h := r.Histogram("h_seconds", "", nil, nil)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 || g.Value() != 8000 {
		t.Fatalf("counter %v gauge %v, want 8000", c.Value(), g.Value())
	}
	if _, count, _ := h.State(); count != 8000 {
		t.Fatalf("histogram count %v, want 8000", count)
	}
}
