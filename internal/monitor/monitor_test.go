package monitor

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/gates-middleware/gates/internal/adapt"
	"github.com/gates-middleware/gates/internal/clock"
	"github.com/gates-middleware/gates/internal/netsim"
	"github.com/gates-middleware/gates/internal/pipeline"
)

// pacedSource emits n values at the given virtual pace.
type pacedSource struct {
	n    int
	pace time.Duration
}

func (s *pacedSource) Run(ctx *pipeline.Context, out *pipeline.Emitter) error {
	for i := 0; i < s.n; i++ {
		ctx.ChargeCompute(s.pace)
		if err := out.EmitValue(i, 8); err != nil {
			return err
		}
	}
	return nil
}

// paramSink registers a parameter and consumes everything.
type paramSink struct{}

func (paramSink) Init(ctx *pipeline.Context) error {
	_, err := ctx.SpecifyParam(adapt.ParamSpec{
		Name: "rate", Initial: 0.5, Min: 0.1, Max: 1, Step: 0.01,
		Direction: adapt.IncreaseSlowsProcessing,
	})
	return err
}
func (paramSink) Process(*pipeline.Context, *pipeline.Packet, *pipeline.Emitter) error { return nil }
func (paramSink) Finish(*pipeline.Context, *pipeline.Emitter) error                    { return nil }

func TestNewRequiresClock(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(nil, ...) did not panic")
		}
	}()
	New(nil, time.Second)
}

func TestSampleCollectsStageState(t *testing.T) {
	clk := clock.NewScaled(2000)
	e := pipeline.New(clk)
	src, _ := e.AddSourceStage("feed", 0, &pacedSource{n: 2000, pace: 10 * time.Millisecond},
		pipeline.StageConfig{DisableAdaptation: true, ComputeQuantum: 100 * time.Millisecond})
	snk, _ := e.AddProcessorStage("sink", 0, paramSink{}, pipeline.StageConfig{})
	e.Connect(src, snk, nil)
	snk.SetNode("hub")

	m := New(clk, 200*time.Millisecond)
	m.WatchStage(snk)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		m.Start(stop)
	}()
	if err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	if m.Latest().At.IsZero() {
		t.Fatal("no snapshots taken")
	}
	series := m.StageSeries("sink", 0)
	if len(series) < 3 {
		t.Fatalf("only %d samples over a 20-virtual-second run", len(series))
	}
	last := series[len(series)-1]
	if last.Node != "hub" {
		t.Fatalf("node = %q", last.Node)
	}
	if last.ItemsIn == 0 {
		t.Fatal("items counter never moved")
	}
	if _, ok := last.Params["rate"]; !ok {
		t.Fatal("parameter missing from sample")
	}
	// Arrival rate: the feed emits 100 items per virtual second; allow a
	// generous band for sampling jitter across mid-run samples.
	sawRate := false
	for _, s := range series[1:] {
		if s.ArrivalRate > 20 && s.ArrivalRate < 500 {
			sawRate = true
		}
	}
	if !sawRate {
		t.Fatalf("no plausible λ observed in %d samples", len(series))
	}
}

func TestSampleTracksLinks(t *testing.T) {
	clk := clock.NewManual()
	m := New(clk, time.Second)
	l := netsim.NewLink(clk, netsim.LinkConfig{Bandwidth: 1000, Quantum: time.Hour})
	m.WatchLink("wan", l)

	m.Sample()
	l.Transfer(500)
	clk.Advance(time.Second)
	snap := m.Sample()
	if len(snap.Links) != 1 || snap.Links[0].Bytes != 500 {
		t.Fatalf("link sample = %+v", snap.Links)
	}
	if tp := snap.Links[0].Throughput; tp < 499 || tp > 501 {
		t.Fatalf("throughput = %v, want ~500 B/s", tp)
	}
}

func TestRatesDerivedFromCounters(t *testing.T) {
	clk := clock.NewManual()
	e := pipeline.New(clk)
	src, _ := e.AddSourceStage("s", 0, &pacedSource{n: 1}, pipeline.StageConfig{})
	snk, _ := e.AddProcessorStage("p", 0, paramSink{}, pipeline.StageConfig{})
	e.Connect(src, snk, nil)

	m := New(clk, time.Second)
	m.WatchStage(snk)
	first := m.Sample()
	if first.Stages[0].ArrivalRate != 0 {
		t.Fatal("first sample must have zero rate (no baseline)")
	}
	// Without time advancing, rates stay zero rather than dividing by 0.
	again := m.Sample()
	if again.Stages[0].ArrivalRate != 0 {
		t.Fatal("zero-dt sample produced a rate")
	}
}

func TestRenderDashboard(t *testing.T) {
	clk := clock.NewManual()
	m := New(clk, time.Second)
	var buf bytes.Buffer
	m.Render(&buf)
	if !strings.Contains(buf.String(), "no samples") {
		t.Fatal("empty monitor did not say so")
	}

	e := pipeline.New(clk)
	src, _ := e.AddSourceStage("s", 0, &pacedSource{n: 1}, pipeline.StageConfig{})
	snk, _ := e.AddProcessorStage("p", 0, paramSink{}, pipeline.StageConfig{})
	e.Connect(src, snk, nil)
	l := netsim.NewLink(clk, netsim.LinkConfig{})
	m.WatchStage(src)
	m.WatchStage(snk)
	m.WatchLink("edge", l)
	m.Sample()
	buf.Reset()
	m.Render(&buf)
	out := buf.String()
	for _, want := range []string{"s/0", "p/0", "edge", "queue"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dashboard missing %q:\n%s", want, out)
		}
	}
}

func TestHistoryBounded(t *testing.T) {
	clk := clock.NewManual()
	m := New(clk, time.Second)
	m.maxHist = 10
	for i := 0; i < 25; i++ {
		clk.Advance(time.Second)
		m.Sample()
	}
	if got := len(m.History()); got != 10 {
		t.Fatalf("history length = %d, want bounded at 10", got)
	}
}

func TestWatchNilIgnored(t *testing.T) {
	m := New(clock.NewManual(), time.Second)
	m.WatchStage(nil)
	m.WatchLink("x", nil)
	if snap := m.Sample(); len(snap.Stages) != 0 || len(snap.Links) != 0 {
		t.Fatal("nil subjects were sampled")
	}
}

// passThrough forwards every packet downstream, so a watched middle stage
// moves both its items-in and items-out counters.
type passThrough struct{}

func (passThrough) Init(*pipeline.Context) error { return nil }
func (passThrough) Process(_ *pipeline.Context, pkt *pipeline.Packet, out *pipeline.Emitter) error {
	return out.Emit(pkt)
}
func (passThrough) Finish(*pipeline.Context, *pipeline.Emitter) error { return nil }

func TestRateDerivationMultiSample(t *testing.T) {
	clk := clock.NewManual()
	e := pipeline.New(clk)
	src, _ := e.AddSourceStage("s", 0, &pacedSource{n: 100}, pipeline.StageConfig{DisableAdaptation: true})
	mid, _ := e.AddProcessorStage("p", 0, passThrough{}, pipeline.StageConfig{DisableAdaptation: true})
	snk, _ := e.AddProcessorStage("z", 0, paramSink{}, pipeline.StageConfig{DisableAdaptation: true})
	l := netsim.NewLink(clk, netsim.LinkConfig{Bandwidth: 1 << 40, Quantum: time.Hour})
	e.Connect(src, mid, nil)
	e.Connect(mid, snk, l)

	m := New(clk, time.Second)
	m.WatchStage(mid)
	m.WatchLink("edge", l)

	m.Sample() // baseline: all counters zero
	if err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	bytes := l.Stats().Bytes
	if bytes == 0 {
		t.Fatal("link carried nothing")
	}

	// All 100 items (and the link bytes) landed between the baseline and
	// this sample; 4 virtual seconds elapsed, so λ = μ = 25 items/s and
	// the link throughput is bytes/4 — derived purely from counter deltas.
	clk.Advance(4 * time.Second)
	snap := m.Sample()
	st := snap.Stages[0]
	if st.ItemsIn != 100 || st.ItemsOut != 100 {
		t.Fatalf("items in/out = %d/%d, want 100/100", st.ItemsIn, st.ItemsOut)
	}
	if st.ArrivalRate != 25 || st.ServiceRate != 25 {
		t.Fatalf("λ, μ = %v, %v, want 25, 25", st.ArrivalRate, st.ServiceRate)
	}
	if want := float64(bytes) / 4; snap.Links[0].Throughput != want {
		t.Fatalf("link throughput = %v, want %v", snap.Links[0].Throughput, want)
	}

	// Nothing moved since: the next delta window must read zero rates while
	// the lifetime counters hold.
	clk.Advance(2 * time.Second)
	idle := m.Sample()
	if st := idle.Stages[0]; st.ArrivalRate != 0 || st.ServiceRate != 0 || st.ItemsIn != 100 {
		t.Fatalf("idle window: λ=%v µ=%v in=%d, want 0, 0, 100", st.ArrivalRate, st.ServiceRate, st.ItemsIn)
	}
	if idle.Links[0].Throughput != 0 {
		t.Fatalf("idle link throughput = %v", idle.Links[0].Throughput)
	}
}

func TestRestartCounterReset(t *testing.T) {
	clk := clock.NewManual()
	build := func(n int) (*pipeline.Engine, *pipeline.Stage) {
		e := pipeline.New(clk)
		src, _ := e.AddSourceStage("s", 0, &pacedSource{n: n}, pipeline.StageConfig{DisableAdaptation: true})
		snk, _ := e.AddProcessorStage("p", 0, paramSink{}, pipeline.StageConfig{DisableAdaptation: true})
		e.Connect(src, snk, nil)
		return e, snk
	}

	m := New(clk, time.Second)
	e1, snk1 := build(100)
	m.WatchStage(snk1)
	m.Sample() // baseline at zero
	if err := e1.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Second)
	if st := m.Sample().Stages[0]; st.ArrivalRate != 100 {
		t.Fatalf("pre-restart λ = %v, want 100", st.ArrivalRate)
	}

	// A restarted instance re-registers the same (id, instance) series with
	// fresh counters. The watcher takes the new stage over, and the rate
	// math must treat the backwards counter as a post-reset value — 30
	// items into the new incarnation, not a negative delta from 100.
	e2, snk2 := build(30)
	m.WatchStage(snk2)
	if err := e2.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Second)
	st := m.Sample().Stages[0]
	if st.ItemsIn != 30 {
		t.Fatalf("post-restart items in = %d, want 30", st.ItemsIn)
	}
	if st.ArrivalRate != 30 {
		t.Fatalf("post-restart λ = %v, want 30 (counter reset mishandled)", st.ArrivalRate)
	}
	if len(m.Sample().Stages) != 1 {
		t.Fatal("restart duplicated the watched stage")
	}
}
