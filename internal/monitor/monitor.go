// Package monitor implements the observation side of the middleware that
// §1 of the paper describes: "the system monitors the arrival rate at each
// source, the available computing resources and memory, and the available
// network bandwidth".
//
// A Monitor periodically samples every watched stage — queue occupancy, the
// adaptation state (d̃), current parameter values, and arrival/consumption
// rates λ and μ derived from the stage's item counters — plus the byte
// counts of watched links. Snapshots accumulate into per-stage histories,
// and Render prints a dashboard. The experiments use the same counters
// implicitly; the Monitor packages them for operators and for the
// gates-launcher -monitor flag.
package monitor

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"text/tabwriter"
	"time"

	"github.com/gates-middleware/gates/internal/clock"
	"github.com/gates-middleware/gates/internal/netsim"
	"github.com/gates-middleware/gates/internal/pipeline"
)

// StageSample is one observation of one stage instance.
type StageSample struct {
	// At is the virtual time of the sample.
	At time.Time
	// Stage and Instance identify the stage.
	Stage    string
	Instance int
	// Node is where the instance runs.
	Node string
	// QueueLen is the input-buffer occupancy d.
	QueueLen int
	// DTilde is the stage's long-term average queue size factor.
	DTilde float64
	// ItemsIn and ItemsOut are the lifetime counters at sample time.
	ItemsIn, ItemsOut uint64
	// ArrivalRate (λ) and ServiceRate (μ) are items per virtual second
	// since the previous sample; zero on the first sample.
	ArrivalRate, ServiceRate float64
	// Params holds the current value of every adjustment parameter.
	Params map[string]float64
}

// LinkSample is one observation of one link.
type LinkSample struct {
	At    time.Time
	Name  string
	Bytes int64
	// Throughput is bytes per virtual second since the previous sample.
	Throughput float64
}

// Snapshot is one synchronized pass over everything watched.
type Snapshot struct {
	At     time.Time
	Stages []StageSample
	Links  []LinkSample
}

// Monitor samples watched stages and links on a fixed virtual interval.
// Construct with New, add subjects with Watch*, then run Start in a
// goroutine (or call Sample directly for on-demand observation).
type Monitor struct {
	clk      clock.Clock
	interval time.Duration

	mu      sync.Mutex
	stages  []*pipeline.Stage
	links   map[string]*netsim.Link
	prev    map[string]StageSample // keyed by stage/instance
	prevLnk map[string]LinkSample
	history []Snapshot
	maxHist int
}

// New returns a monitor sampling every interval of virtual time.
func New(clk clock.Clock, interval time.Duration) *Monitor {
	if clk == nil {
		panic("monitor: New requires a clock")
	}
	if interval <= 0 {
		interval = time.Second
	}
	return &Monitor{
		clk:      clk,
		interval: interval,
		links:    make(map[string]*netsim.Link),
		prev:     make(map[string]StageSample),
		prevLnk:  make(map[string]LinkSample),
		maxHist:  1024,
	}
}

// WatchStage adds one stage instance.
func (m *Monitor) WatchStage(st *pipeline.Stage) {
	if st == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stages = append(m.stages, st)
}

// WatchStages adds every instance of a deployment's stage map.
func (m *Monitor) WatchStages(stages map[string][]*pipeline.Stage) {
	ids := make([]string, 0, len(stages))
	for id := range stages {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		for _, st := range stages[id] {
			m.WatchStage(st)
		}
	}
}

// WatchLink adds a named link.
func (m *Monitor) WatchLink(name string, l *netsim.Link) {
	if l == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.links[name] = l
}

// Sample takes one synchronized snapshot now and appends it to the history.
func (m *Monitor) Sample() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.clk.Now()
	snap := Snapshot{At: now}
	for _, st := range m.stages {
		key := fmt.Sprintf("%s/%d", st.ID(), st.Instance())
		stats := st.Stats()
		s := StageSample{
			At:       now,
			Stage:    st.ID(),
			Instance: st.Instance(),
			Node:     st.Node(),
			QueueLen: st.QueueLen(),
			DTilde:   st.Controller().DTilde(),
			ItemsIn:  stats.ItemsIn,
			ItemsOut: stats.ItemsOut,
			Params:   make(map[string]float64),
		}
		for _, p := range st.Controller().Params() {
			s.Params[p.Spec().Name] = p.Value()
		}
		if prev, ok := m.prev[key]; ok {
			if dt := now.Sub(prev.At).Seconds(); dt > 0 {
				s.ArrivalRate = float64(stats.ItemsIn-prev.ItemsIn) / dt
				s.ServiceRate = float64(stats.ItemsOut-prev.ItemsOut) / dt
			}
		}
		m.prev[key] = s
		snap.Stages = append(snap.Stages, s)
	}
	names := make([]string, 0, len(m.links))
	for name := range m.links {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		bytes := m.links[name].Stats().Bytes
		ls := LinkSample{At: now, Name: name, Bytes: bytes}
		if prev, ok := m.prevLnk[name]; ok {
			if dt := now.Sub(prev.At).Seconds(); dt > 0 {
				ls.Throughput = float64(bytes-prev.Bytes) / dt
			}
		}
		m.prevLnk[name] = ls
		snap.Links = append(snap.Links, ls)
	}
	m.history = append(m.history, snap)
	if len(m.history) > m.maxHist {
		m.history = m.history[len(m.history)-m.maxHist:]
	}
	return snap
}

// Start samples on the monitor's interval until stop is closed or the
// context-free loop is told to end. It is intended to run in its own
// goroutine alongside an application.
func (m *Monitor) Start(stop <-chan struct{}) {
	for {
		select {
		case <-stop:
			return
		case <-m.clk.After(m.interval):
			m.Sample()
		}
	}
}

// Latest returns the most recent snapshot (zero value when none taken).
func (m *Monitor) Latest() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.history) == 0 {
		return Snapshot{}
	}
	return m.history[len(m.history)-1]
}

// History returns all retained snapshots in order.
func (m *Monitor) History() []Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Snapshot, len(m.history))
	copy(out, m.history)
	return out
}

// StageSeries extracts one stage instance's samples across the history.
func (m *Monitor) StageSeries(stage string, instance int) []StageSample {
	var out []StageSample
	for _, snap := range m.History() {
		for _, s := range snap.Stages {
			if s.Stage == stage && s.Instance == instance {
				out = append(out, s)
			}
		}
	}
	return out
}

// Render prints the latest snapshot as a dashboard.
func (m *Monitor) Render(w io.Writer) {
	snap := m.Latest()
	if len(snap.Stages) == 0 && len(snap.Links) == 0 {
		fmt.Fprintln(w, "monitor: no samples")
		return
	}
	fmt.Fprintf(w, "monitor snapshot @ %s\n", snap.At.Format("15:04:05.000"))
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "stage\tnode\tqueue\td~\tλ/s\tμ/s\tparams")
	for _, s := range snap.Stages {
		params := ""
		names := make([]string, 0, len(s.Params))
		for name := range s.Params {
			names = append(names, name)
		}
		sort.Strings(names)
		for i, name := range names {
			if i > 0 {
				params += " "
			}
			params += fmt.Sprintf("%s=%.3g", name, s.Params[name])
		}
		fmt.Fprintf(tw, "%s/%d\t%s\t%d\t%.1f\t%.1f\t%.1f\t%s\n",
			s.Stage, s.Instance, s.Node, s.QueueLen, s.DTilde, s.ArrivalRate, s.ServiceRate, params)
	}
	tw.Flush()
	if len(snap.Links) > 0 {
		tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "link\tbytes\tB/s")
		for _, l := range snap.Links {
			fmt.Fprintf(tw, "%s\t%d\t%.0f\n", l.Name, l.Bytes, l.Throughput)
		}
		tw.Flush()
	}
}
