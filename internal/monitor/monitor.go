// Package monitor implements the observation side of the middleware that
// §1 of the paper describes: "the system monitors the arrival rate at each
// source, the available computing resources and memory, and the available
// network bandwidth".
//
// A Monitor is a consumer of the obs.Registry: watching a stage or link
// instruments it into the registry, and Sample reads the published series
// back out, deriving arrival/consumption rates λ and μ and link throughput
// from counter deltas over virtual time. Snapshots accumulate into bounded
// histories, and Render prints a dashboard. The same registry can be shared
// with an HTTP exposition endpoint (obs.Serve), so the dashboard and
// /metrics always agree.
package monitor

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"text/tabwriter"
	"time"

	"github.com/gates-middleware/gates/internal/clock"
	"github.com/gates-middleware/gates/internal/netsim"
	"github.com/gates-middleware/gates/internal/obs"
	"github.com/gates-middleware/gates/internal/pipeline"
)

// StageSample is one observation of one stage instance.
type StageSample struct {
	// At is the virtual time of the sample.
	At time.Time
	// Stage and Instance identify the stage.
	Stage    string
	Instance int
	// Node is where the instance runs.
	Node string
	// QueueLen is the input-buffer occupancy d.
	QueueLen int
	// DTilde is the stage's long-term average queue size factor.
	DTilde float64
	// ItemsIn and ItemsOut are the lifetime counters at sample time.
	ItemsIn, ItemsOut uint64
	// ArrivalRate (λ) and ServiceRate (μ) are items per virtual second
	// since the previous sample; zero on the first sample. A counter that
	// moved backwards (stage restart) contributes its post-reset value, not
	// a negative delta.
	ArrivalRate, ServiceRate float64
	// E2EP99 is the 99th-percentile source-to-here latency in virtual
	// seconds, read from the stage's gates_stage_e2e_latency_seconds
	// histogram; zero when the stage has observed no lineage-stamped
	// packets yet.
	E2EP99 float64
	// PushStallS is the stage's lifetime inbound-backpressure counter at
	// sample time: wall-clock seconds producers spent parked on its full
	// input buffer (gates_queue_push_stall_seconds_total).
	PushStallS float64
	// BackpressureFrac is the fraction of the wall-clock time since the
	// previous sample that producers spent parked pushing into this stage
	// — the dashboard's slice of the attribution engine's inbound signal.
	// Wall, not virtual: a parked goroutine advances no virtual schedule.
	// Zero on the first sample.
	BackpressureFrac float64
	// Params holds the current value of every adjustment parameter.
	Params map[string]float64

	wallAt time.Time // wall-clock sample time, for BackpressureFrac deltas
}

// LinkSample is one observation of one link.
type LinkSample struct {
	At    time.Time
	Name  string
	Bytes int64
	// Throughput is bytes per virtual second since the previous sample.
	Throughput float64
}

// Snapshot is one synchronized pass over everything watched.
type Snapshot struct {
	At     time.Time
	Stages []StageSample
	Links  []LinkSample
}

// watched is one stage under observation plus the label set its series were
// instrumented with.
type watched struct {
	st     *pipeline.Stage
	labels map[string]string
}

// Monitor samples watched stages and links on a fixed virtual interval.
// Construct with New (private registry) or NewWithRegistry (shared with an
// exposition endpoint), add subjects with Watch*, then run Start or Run in a
// goroutine (or call Sample directly for on-demand observation).
type Monitor struct {
	clk      clock.Clock
	interval time.Duration
	reg      *obs.Registry

	mu      sync.Mutex
	stages  []watched
	links   map[string]*netsim.Link
	prev    map[string]StageSample // keyed by stage/instance
	prevLnk map[string]LinkSample
	history []Snapshot
	maxHist int
	trends  obs.TrendReader
}

// New returns a monitor sampling every interval of virtual time into a
// private registry.
func New(clk clock.Clock, interval time.Duration) *Monitor {
	if clk == nil {
		panic("monitor: New requires a clock")
	}
	return NewWithRegistry(clk, interval, obs.NewRegistry(clk))
}

// NewWithRegistry returns a monitor publishing into (and sampling from) a
// shared registry — typically the one an obs HTTP endpoint exposes, so the
// dashboard and /metrics read the same series.
func NewWithRegistry(clk clock.Clock, interval time.Duration, reg *obs.Registry) *Monitor {
	if clk == nil {
		panic("monitor: NewWithRegistry requires a clock")
	}
	if reg == nil {
		panic("monitor: NewWithRegistry requires a registry")
	}
	if interval <= 0 {
		interval = time.Second
	}
	return &Monitor{
		clk:      clk,
		interval: interval,
		reg:      reg,
		links:    make(map[string]*netsim.Link),
		prev:     make(map[string]StageSample),
		prevLnk:  make(map[string]LinkSample),
		maxHist:  1024,
	}
}

// Registry returns the registry the monitor publishes into and reads from.
func (m *Monitor) Registry() *obs.Registry { return m.reg }

// SetTrendSource attaches a time-series trend reader (typically the obs
// bundle's Sampler). When set, Render appends a per-stage trend section:
// utilization ρ̂, backlog slope with a direction arrow, per-stage CPU, and a
// queue-depth sparkline over the trend window.
func (m *Monitor) SetTrendSource(tr obs.TrendReader) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.trends = tr
}

// WatchStage adds one stage instance, instrumenting it into the registry.
// Watching a new instance object with the same id/instance replaces the old
// one (a restarted stage takes over its series; rate derivation treats the
// counter reset as a restart, not a negative delta).
func (m *Monitor) WatchStage(st *pipeline.Stage) {
	if st == nil {
		return
	}
	st.Instrument(m.reg)
	w := watched{st: st, labels: st.ObsLabels()}
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, old := range m.stages {
		if old.st.ID() == st.ID() && old.st.Instance() == st.Instance() {
			m.stages[i] = w
			return
		}
	}
	m.stages = append(m.stages, w)
}

// WatchStages adds every instance of a deployment's stage map.
func (m *Monitor) WatchStages(stages map[string][]*pipeline.Stage) {
	ids := make([]string, 0, len(stages))
	for id := range stages {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		for _, st := range stages[id] {
			m.WatchStage(st)
		}
	}
}

// WatchLink adds a named link, instrumenting it into the registry.
func (m *Monitor) WatchLink(name string, l *netsim.Link) {
	if l == nil {
		return
	}
	l.Instrument(m.reg, name)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.links[name] = l
}

// counterDelta returns how much a monotone counter advanced between samples.
// A current value below the previous one means the counter restarted (a
// stage instance was replaced); everything since the reset is the delta.
func counterDelta(cur, prev float64) float64 {
	if cur < prev {
		return cur
	}
	return cur - prev
}

// stageValue reads one of the stage's registry series (zero when absent).
func (m *Monitor) stageValue(name string, w watched) float64 {
	v, _ := m.reg.Value(name, w.labels)
	return v
}

// Sample takes one synchronized snapshot now and appends it to the history.
// Counters come from the registry (the same series /metrics exposes);
// adaptation state (d̃, parameter values) comes from the stage's controller.
func (m *Monitor) Sample() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.clk.Now()
	snap := Snapshot{At: now}
	for _, w := range m.stages {
		st := w.st
		key := fmt.Sprintf("%s/%d", st.ID(), st.Instance())
		itemsIn := m.stageValue("gates_stage_items_in_total", w)
		itemsOut := m.stageValue("gates_stage_items_out_total", w)
		pushStall := m.stageValue(obs.MetricQueuePushStall, w)
		s := StageSample{
			At:         now,
			Stage:      st.ID(),
			Instance:   st.Instance(),
			Node:       st.Node(),
			QueueLen:   int(m.stageValue("gates_queue_depth", w)),
			DTilde:     st.Controller().DTilde(),
			ItemsIn:    uint64(itemsIn),
			ItemsOut:   uint64(itemsOut),
			PushStallS: pushStall,
			Params:     make(map[string]float64),
			wallAt:     time.Now(),
		}
		if p99, ok := m.reg.HistogramQuantile(obs.MetricE2ELatency, w.labels, 0.99); ok {
			s.E2EP99 = p99
		}
		for _, p := range st.Controller().Params() {
			s.Params[p.Spec().Name] = p.Value()
		}
		if prev, ok := m.prev[key]; ok {
			if dt := now.Sub(prev.At).Seconds(); dt > 0 {
				s.ArrivalRate = counterDelta(itemsIn, float64(prev.ItemsIn)) / dt
				s.ServiceRate = counterDelta(itemsOut, float64(prev.ItemsOut)) / dt
			}
			// Stall counters advance on the wall clock, so the fraction
			// is taken against the wall interval between samples, not the
			// (possibly compressed) virtual one.
			if dw := s.wallAt.Sub(prev.wallAt).Seconds(); dw > 0 {
				f := counterDelta(pushStall, prev.PushStallS) / dw
				if f > 1 {
					f = 1
				}
				s.BackpressureFrac = f
			}
		}
		m.prev[key] = s
		snap.Stages = append(snap.Stages, s)
	}
	names := make([]string, 0, len(m.links))
	for name := range m.links {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		bytes, _ := m.reg.Value("gates_link_bytes_total", map[string]string{"link": name})
		ls := LinkSample{At: now, Name: name, Bytes: int64(bytes)}
		if prev, ok := m.prevLnk[name]; ok {
			if dt := now.Sub(prev.At).Seconds(); dt > 0 {
				ls.Throughput = counterDelta(bytes, float64(prev.Bytes)) / dt
			}
		}
		m.prevLnk[name] = ls
		snap.Links = append(snap.Links, ls)
	}
	m.history = append(m.history, snap)
	if len(m.history) > m.maxHist {
		m.history = m.history[len(m.history)-m.maxHist:]
	}
	return snap
}

// Run samples on the monitor's interval until stop is closed, rendering a
// dashboard to w after every sample when w is non-nil — the streaming mode
// behind gates-launcher -monitor. It is intended to run in its own goroutine
// alongside an application.
func (m *Monitor) Run(stop <-chan struct{}, w io.Writer) {
	for {
		select {
		case <-stop:
			return
		case <-m.clk.After(m.interval):
			m.Sample()
			if w != nil {
				m.Render(w)
			}
		}
	}
}

// Start samples on the monitor's interval until stop is closed, without
// rendering; use Run to stream dashboards.
func (m *Monitor) Start(stop <-chan struct{}) {
	m.Run(stop, nil)
}

// Latest returns the most recent snapshot (zero value when none taken).
func (m *Monitor) Latest() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.history) == 0 {
		return Snapshot{}
	}
	return m.history[len(m.history)-1]
}

// History returns all retained snapshots in order.
func (m *Monitor) History() []Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Snapshot, len(m.history))
	copy(out, m.history)
	return out
}

// StageSeries extracts one stage instance's samples across the history. It
// scans under the lock rather than copying every retained snapshot first.
func (m *Monitor) StageSeries(stage string, instance int) []StageSample {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []StageSample
	for i := range m.history {
		for _, s := range m.history[i].Stages {
			if s.Stage == stage && s.Instance == instance {
				out = append(out, s)
			}
		}
	}
	return out
}

// Render prints the latest snapshot as a dashboard.
func (m *Monitor) Render(w io.Writer) {
	snap := m.Latest()
	if len(snap.Stages) == 0 && len(snap.Links) == 0 {
		fmt.Fprintln(w, "monitor: no samples")
		return
	}
	fmt.Fprintf(w, "monitor snapshot @ %s\n", snap.At.Format("15:04:05.000"))
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "stage\tnode\tqueue\tbackpr\td~\tλ/s\tμ/s\te2e-p99\tparams")
	for _, s := range snap.Stages {
		params := ""
		names := make([]string, 0, len(s.Params))
		for name := range s.Params {
			names = append(names, name)
		}
		sort.Strings(names)
		for i, name := range names {
			if i > 0 {
				params += " "
			}
			params += fmt.Sprintf("%s=%.3g", name, s.Params[name])
		}
		e2e := "-"
		if s.E2EP99 > 0 {
			e2e = fmt.Sprintf("%.3gs", s.E2EP99)
		}
		backpr := "-"
		if s.BackpressureFrac > 0 {
			backpr = fmt.Sprintf("%d%%", int(s.BackpressureFrac*100+0.5))
		}
		fmt.Fprintf(tw, "%s/%d\t%s\t%d\t%s\t%.1f\t%.1f\t%.1f\t%s\t%s\n",
			s.Stage, s.Instance, s.Node, s.QueueLen, backpr, s.DTilde, s.ArrivalRate, s.ServiceRate, e2e, params)
	}
	tw.Flush()
	if len(snap.Links) > 0 {
		tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "link\tbytes\tB/s")
		for _, l := range snap.Links {
			fmt.Fprintf(tw, "%s\t%d\t%.0f\n", l.Name, l.Bytes, l.Throughput)
		}
		tw.Flush()
	}
	m.mu.Lock()
	tr := m.trends
	m.mu.Unlock()
	if tr == nil {
		return
	}
	sum := tr.Trends()
	if len(sum.Stages) == 0 {
		return
	}
	tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "trend\tρ̂\tstall\tbacklog\tcpu-s\tcores\tdepth")
	for _, t := range sum.Stages {
		fmt.Fprintf(tw, "%s\t%.2f\t%.0f%%\t%.1f%s\t%.2f\t%.2f\t%s\n",
			t.Stage, t.Utilization, t.StallFrac*100,
			t.BacklogSlope, obs.TrendArrow(t.BacklogSlope, 0.01),
			t.CPUSeconds, t.CPURate, obs.Sparkline(t.DepthSpark))
	}
	tw.Flush()
}
