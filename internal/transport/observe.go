package transport

import "github.com/gates-middleware/gates/internal/obs"

// ServerStats is a snapshot of a server endpoint's frame accounting.
type ServerStats struct {
	// FramesIn and BytesIn count decoded inbound frames and their payload
	// bytes (length prefix excluded).
	FramesIn, BytesIn uint64
	// FramesOut and BytesOut count broadcast (exception) frames written
	// back to upstream connections.
	FramesOut, BytesOut uint64
}

// Stats returns the server's frame accounting.
func (s *Server) Stats() ServerStats {
	return ServerStats{
		FramesIn:  s.framesIn.Load(),
		BytesIn:   s.bytesIn.Load(),
		FramesOut: s.framesOut.Load(),
		BytesOut:  s.bytesOut.Load(),
	}
}

// Instrument publishes the server's frame counters into reg, labeled by
// endpoint role and name (typically the listen address). A nil registry is a
// no-op.
func (s *Server) Instrument(reg *obs.Registry, name string) {
	if reg == nil {
		return
	}
	lb := map[string]string{"endpoint": name, "role": "server"}
	reg.CounterFunc("gates_transport_frames_in_total",
		"Frames received and decoded on the endpoint.", lb,
		func() float64 { return float64(s.framesIn.Load()) })
	reg.CounterFunc("gates_transport_bytes_in_total",
		"Payload bytes received on the endpoint.", lb,
		func() float64 { return float64(s.bytesIn.Load()) })
	reg.CounterFunc("gates_transport_frames_out_total",
		"Exception frames broadcast back to upstream peers.", lb,
		func() float64 { return float64(s.framesOut.Load()) })
	reg.CounterFunc("gates_transport_bytes_out_total",
		"Payload bytes broadcast back to upstream peers.", lb,
		func() float64 { return float64(s.bytesOut.Load()) })
}

// ClientStats is a snapshot of a client endpoint's frame accounting.
type ClientStats struct {
	// FramesOut and BytesOut count frames written (payload bytes, length
	// prefix excluded).
	FramesOut, BytesOut uint64
}

// Stats returns the client's frame accounting.
func (c *Client) Stats() ClientStats {
	return ClientStats{FramesOut: c.framesOut.Load(), BytesOut: c.bytesOut.Load()}
}

// Instrument publishes the client's frame counters into reg, labeled by
// endpoint role and name (typically the dialed address). A nil registry is a
// no-op.
func (c *Client) Instrument(reg *obs.Registry, name string) {
	if reg == nil {
		return
	}
	lb := map[string]string{"endpoint": name, "role": "client"}
	reg.CounterFunc("gates_transport_frames_out_total",
		"Frames sent from the endpoint.", lb,
		func() float64 { return float64(c.framesOut.Load()) })
	reg.CounterFunc("gates_transport_bytes_out_total",
		"Payload bytes sent from the endpoint.", lb,
		func() float64 { return float64(c.bytesOut.Load()) })
}
