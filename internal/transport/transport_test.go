package transport

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"io"
	"sync"
	"testing"
	"time"

	"github.com/gates-middleware/gates/internal/adapt"
	"github.com/gates-middleware/gates/internal/clock"
	"github.com/gates-middleware/gates/internal/pipeline"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{[]byte("hello"), {}, bytes.Repeat([]byte{0xAB}, 100_000)}
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range payloads {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame mismatch: got %d bytes, want %d", len(got), len(want))
		}
	}
	if _, err := ReadFrame(&buf); !errors.Is(err, io.EOF) {
		t.Fatalf("drained reader returned %v, want EOF", err)
	}
}

func TestFrameTooLargeWrite(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, make([]byte, MaxFrameSize+1)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized write = %v, want ErrFrameTooLarge", err)
	}
}

func TestFrameTooLargeRead(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrameSize+1)
	if _, err := ReadFrame(bytes.NewReader(hdr[:])); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized read = %v, want ErrFrameTooLarge", err)
	}
}

func TestFrameShortPayload(t *testing.T) {
	var buf bytes.Buffer
	WriteFrame(&buf, []byte("hello"))
	trunc := buf.Bytes()[:6] // header + 2 of 5 payload bytes
	if _, err := ReadFrame(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated frame read succeeded")
	}
}

func TestCodecPacketRoundTrip(t *testing.T) {
	pkt := &pipeline.Packet{
		SourceStage:    "sampler",
		SourceInstance: 3,
		Seq:            42,
		Items:          7,
		WireSize:       128,
		Value:          "payload",
	}
	b, err := Encode(PacketMessage(pkt))
	if err != nil {
		t.Fatal(err)
	}
	m, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	got := m.Packet()
	if got.SourceStage != "sampler" || got.SourceInstance != 3 || got.Seq != 42 ||
		got.Items != 7 || got.WireSize != 128 || got.Value.(string) != "payload" {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestCodecExceptionRoundTrip(t *testing.T) {
	b, err := Encode(ExceptionMessage(adapt.ExceptionOverload))
	if err != nil {
		t.Fatal(err)
	}
	m, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind != KindException || m.Exception != adapt.ExceptionOverload {
		t.Fatalf("decoded %+v", m)
	}
}

func TestCodecRejectsGarbage(t *testing.T) {
	if _, err := Decode([]byte("not gob")); err == nil {
		t.Fatal("garbage decoded")
	}
	// A valid gob of an unknown kind is also rejected.
	b, _ := Encode(Message{Kind: KindPacket})
	var m Message
	m.Kind = 0
	b2, _ := Encode(m)
	if _, err := Decode(b2); err == nil {
		t.Fatal("zero-kind message accepted")
	}
	_ = b
}

func TestClientServerEndToEnd(t *testing.T) {
	var mu sync.Mutex
	var got []Message
	srv, err := Listen("127.0.0.1:0", func(m Message) {
		mu.Lock()
		got = append(got, m)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	for i := 0; i < 10; i++ {
		if err := cli.Send(PacketMessage(&pipeline.Packet{Seq: uint64(i), Value: i})); err != nil {
			t.Fatal(err)
		}
	}
	cli.Send(ExceptionMessage(adapt.ExceptionUnderload))

	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n == 11 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("received %d messages, want 11", n)
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	for i := 0; i < 10; i++ {
		if got[i].Kind != KindPacket || got[i].Seq != uint64(i) {
			t.Fatalf("message %d = %+v", i, got[i])
		}
	}
	if got[10].Kind != KindException {
		t.Fatalf("last message = %+v, want exception", got[10])
	}
}

func TestConcurrentClients(t *testing.T) {
	var count sync.Map
	srv, err := Listen("127.0.0.1:0", func(m Message) {
		count.Store(m.Value.(int), true)
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const clients, per = 4, 25
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cli, err := Dial(srv.Addr())
			if err != nil {
				t.Error(err)
				return
			}
			defer cli.Close()
			for i := 0; i < per; i++ {
				if err := cli.Send(PacketMessage(&pipeline.Packet{Value: c*per + i})); err != nil {
					t.Error(err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := 0
		count.Range(func(_, _ any) bool { n++; return true })
		if n == clients*per {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("received %d distinct values, want %d", n, clients*per)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	srv, err := Listen("127.0.0.1:0", func(Message) {})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestClientSendAfterClose(t *testing.T) {
	srv, _ := Listen("127.0.0.1:0", func(Message) {})
	defer srv.Close()
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	cli.Close()
	cli.Close() // idempotent
	if err := cli.Send(ExceptionMessage(adapt.ExceptionOverload)); err == nil {
		t.Fatal("Send on closed client succeeded")
	}
}

func TestListenRequiresHandler(t *testing.T) {
	if _, err := Listen("127.0.0.1:0", nil); err == nil {
		t.Fatal("nil handler accepted")
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Fatal("dial to closed port succeeded")
	}
}

// TestBridgedPipelines runs a two-process-shaped topology in one test: an
// upstream engine whose sink is an Egress, TCP in the middle, and a
// downstream engine whose source is an Ingress.
func TestBridgedPipelines(t *testing.T) {
	ingress := NewIngress(1, 16)
	var excs []adapt.Exception
	var excMu sync.Mutex
	ingress.OnException = func(e adapt.Exception) {
		excMu.Lock()
		excs = append(excs, e)
		excMu.Unlock()
	}
	srv, err := Listen("127.0.0.1:0", ingress.Deliver)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Downstream engine: ingress -> collector.
	down := pipeline.New(clock.NewScaled(1000))
	inSt, _ := down.AddSourceStage("ingress", 0, ingress, pipeline.StageConfig{})
	var mu sync.Mutex
	var got []int
	coll := &collectProc{fn: func(v any) {
		mu.Lock()
		got = append(got, v.(int))
		mu.Unlock()
	}}
	collSt, _ := down.AddProcessorStage("collect", 0, coll, pipeline.StageConfig{})
	down.Connect(inSt, collSt, nil)

	downDone := make(chan error, 1)
	go func() { downDone <- down.Run(context.Background()) }()

	// Upstream engine: source -> egress.
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	up := pipeline.New(clock.NewScaled(1000))
	src, _ := up.AddSourceStage("src", 0, &intSource{n: 20}, pipeline.StageConfig{})
	eg, _ := up.AddProcessorStage("egress", 0, NewEgress(cli), pipeline.StageConfig{})
	up.Connect(src, eg, nil)
	if err := up.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	select {
	case err := <-downDone:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("downstream engine never finished")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 20 {
		t.Fatalf("downstream received %d values, want 20", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
}

func TestIngressDefaults(t *testing.T) {
	in := NewIngress(0, 0)
	if in.ExpectFinals != 1 {
		t.Fatalf("ExpectFinals default = %d, want 1", in.ExpectFinals)
	}
	if cap(in.ch) != 64 {
		t.Fatalf("buffer default = %d, want 64", cap(in.ch))
	}
}

// intSource emits 0..n-1.
type intSource struct{ n int }

func (s *intSource) Run(ctx *pipeline.Context, out *pipeline.Emitter) error {
	for i := 0; i < s.n; i++ {
		if err := out.EmitValue(i, 8); err != nil {
			return err
		}
	}
	return nil
}

// collectProc calls fn for every received value.
type collectProc struct{ fn func(any) }

func (c *collectProc) Init(*pipeline.Context) error { return nil }
func (c *collectProc) Process(_ *pipeline.Context, pkt *pipeline.Packet, _ *pipeline.Emitter) error {
	c.fn(pkt.Value)
	return nil
}
func (c *collectProc) Finish(*pipeline.Context, *pipeline.Emitter) error { return nil }

// TestExceptionBackChannel exercises the full bidirectional control plane:
// the downstream host broadcasts exceptions and the upstream client's
// ReadLoop delivers them.
func TestExceptionBackChannel(t *testing.T) {
	srv, err := Listen("127.0.0.1:0", func(Message) {})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	got := make(chan Message, 4)
	go cli.ReadLoop(func(m Message) { got <- m })

	// The server only learns of the connection after the first frame.
	if err := cli.Send(PacketMessage(&pipeline.Packet{Value: 1})); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := srv.Broadcast(ExceptionMessage(adapt.ExceptionOverload)); err != nil {
			t.Fatal(err)
		}
		select {
		case m := <-got:
			if m.Kind != KindException || m.Exception != adapt.ExceptionOverload {
				t.Fatalf("back-channel delivered %+v", m)
			}
			return
		case <-time.After(50 * time.Millisecond):
			if time.Now().After(deadline) {
				t.Fatal("exception never came back")
			}
		}
	}
}

func TestReadLoopNilSafe(t *testing.T) {
	c := &Client{}
	c.ReadLoop(func(Message) {}) // closed client: returns immediately
	srv, _ := Listen("127.0.0.1:0", func(Message) {})
	defer srv.Close()
	cli, _ := Dial(srv.Addr())
	defer cli.Close()
	cli.ReadLoop(nil) // nil handler: returns immediately
}

func TestWriteFramesReadBackIdentical(t *testing.T) {
	payloads := [][]byte{[]byte("alpha"), {}, bytes.Repeat([]byte{0x5C}, 9000), []byte("omega")}

	var batched bytes.Buffer
	if err := WriteFrames(&batched, payloads); err != nil {
		t.Fatal(err)
	}
	var single bytes.Buffer
	for _, p := range payloads {
		if err := WriteFrame(&single, p); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(batched.Bytes(), single.Bytes()) {
		t.Fatal("WriteFrames wire bytes differ from repeated WriteFrame")
	}
	for _, want := range payloads {
		got, err := ReadFrame(&batched)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame mismatch: got %d bytes, want %d", len(got), len(want))
		}
	}
	if _, err := ReadFrame(&batched); !errors.Is(err, io.EOF) {
		t.Fatalf("drained reader returned %v, want EOF", err)
	}
}

func TestWriteFramesRejectsOversized(t *testing.T) {
	var buf bytes.Buffer
	err := WriteFrames(&buf, [][]byte{[]byte("ok"), make([]byte, MaxFrameSize+1)})
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized batch = %v, want ErrFrameTooLarge", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("oversized batch wrote %d bytes before failing", buf.Len())
	}
}

func TestSendBatchDeliveredInOrder(t *testing.T) {
	const n = 50
	var mu sync.Mutex
	var seqs []uint64
	done := make(chan struct{})
	srv, err := Listen("127.0.0.1:0", func(m Message) {
		mu.Lock()
		seqs = append(seqs, m.Seq)
		if len(seqs) == n {
			close(done)
		}
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	msgs := make([]Message, n)
	for i := range msgs {
		msgs[i] = PacketMessage(&pipeline.Packet{Seq: uint64(i), Value: i})
	}
	if err := cli.SendBatch(msgs); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("batch not fully delivered")
	}
	mu.Lock()
	defer mu.Unlock()
	for i, s := range seqs {
		if s != uint64(i) {
			t.Fatalf("message %d has seq %d: batch order not preserved", i, s)
		}
	}
}

func TestSendBatchOnClosedClient(t *testing.T) {
	srv, err := Listen("127.0.0.1:0", func(Message) {})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	cli.Close()
	if err := cli.SendBatch([]Message{PacketMessage(&pipeline.Packet{})}); err == nil {
		t.Fatal("SendBatch on closed client succeeded")
	}
}

func TestEgressBatchFlushesAtBatchAndFinish(t *testing.T) {
	var mu sync.Mutex
	var got []Message
	done := make(chan struct{})
	srv, err := Listen("127.0.0.1:0", func(m Message) {
		mu.Lock()
		got = append(got, m)
		if m.Final {
			close(done)
		}
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	eg := NewEgressBatch(cli, 4)
	// 6 packets: one full flush of 4, then 2 flushed by Finish with the
	// final marker.
	for i := 0; i < 6; i++ {
		if err := eg.Process(nil, &pipeline.Packet{Seq: uint64(i)}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := eg.Finish(nil, nil); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("final marker never arrived")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 7 {
		t.Fatalf("received %d messages, want 7 (6 packets + final)", len(got))
	}
	for i := 0; i < 6; i++ {
		if got[i].Seq != uint64(i) || got[i].Final {
			t.Fatalf("message %d = %+v, want seq %d", i, got[i], i)
		}
	}
	if !got[6].Final {
		t.Fatal("last message is not the final marker")
	}
}

func TestCloseWriteDrainsBothDirections(t *testing.T) {
	// The shutdown hazard in a bidirectional bridge: the server pushes an
	// exception the client has not read yet, and the client then ends its
	// stream. A full Close with that frame unread resets the connection,
	// which can destroy the client's still-in-flight frames (including
	// the Final marker) on the server side. CloseWrite must instead
	// deliver every forward frame, leave the reverse frame readable, and
	// only then let the connection wind down.
	var (
		mu    sync.Mutex
		seen  []*pipeline.Packet
		first = make(chan struct{})
		once  sync.Once
		all   = make(chan struct{})
	)
	srv, err := Listen("127.0.0.1:0", func(m Message) {
		if m.Kind != KindPacket {
			return
		}
		mu.Lock()
		seen = append(seen, m.Packet())
		n := len(seen)
		mu.Unlock()
		once.Do(func() { close(first) })
		if n == 11 {
			close(all)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	// The server only learns of the connection after the first frame.
	if err := cli.Send(PacketMessage(&pipeline.Packet{Seq: 0})); err != nil {
		t.Fatal(err)
	}
	select {
	case <-first:
	case <-time.After(5 * time.Second):
		t.Fatal("server never saw the first frame")
	}
	// Park an exception in the client's receive queue, deliberately
	// unread at half-close time.
	if err := srv.Broadcast(ExceptionMessage(adapt.ExceptionOverload)); err != nil {
		t.Fatal(err)
	}

	msgs := make([]Message, 0, 10)
	for i := 1; i <= 9; i++ {
		msgs = append(msgs, PacketMessage(&pipeline.Packet{Seq: uint64(i)}))
	}
	msgs = append(msgs, PacketMessage(&pipeline.Packet{Final: true}))
	if err := cli.SendBatch(msgs); err != nil {
		t.Fatal(err)
	}
	if err := cli.CloseWrite(); err != nil {
		t.Fatal(err)
	}

	// Every forward frame survives the half-close.
	select {
	case <-all:
	case <-time.After(10 * time.Second):
		mu.Lock()
		n := len(seen)
		mu.Unlock()
		t.Fatalf("server received %d of 11 frames after CloseWrite", n)
	}
	mu.Lock()
	if !seen[10].Final {
		t.Error("last delivered frame is not the final marker")
	}
	mu.Unlock()

	// And the reverse direction is still readable afterwards.
	excCh := make(chan adapt.Exception, 1)
	go cli.ReadLoop(func(m Message) {
		if m.Kind == KindException {
			select {
			case excCh <- m.Exception:
			default:
			}
		}
	})
	select {
	case e := <-excCh:
		if e != adapt.ExceptionOverload {
			t.Fatalf("reverse channel delivered %v", e)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("exception unreadable after CloseWrite")
	}
}

func TestIngressDeliverAfterRunDrops(t *testing.T) {
	// Once the stream has ended, stray packets must be dropped instead of
	// wedging the delivering goroutine (and with it Server.Close) on a
	// full channel.
	ingress := NewIngress(1, 4)
	eng := pipeline.New(clock.NewScaled(1000))
	inSt, _ := eng.AddSourceStage("ingress", 0, ingress, pipeline.StageConfig{})
	sink := &collectProc{fn: func(any) {}}
	sinkSt, _ := eng.AddProcessorStage("sink", 0, sink, pipeline.StageConfig{})
	eng.Connect(inSt, sinkSt, nil)

	ingress.Deliver(PacketMessage(&pipeline.Packet{Final: true}))
	if err := eng.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 64; i++ { // far more than the channel buffers
			ingress.Deliver(PacketMessage(&pipeline.Packet{Seq: uint64(i)}))
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Deliver blocked after Run returned")
	}
}
