package transport

import (
	"context"
	"sync"
	"testing"
	"time"

	"github.com/gates-middleware/gates/internal/clock"
	"github.com/gates-middleware/gates/internal/pipeline"
)

// TestIngressBuffersDuringRewiring pins the recovery-interaction contract:
// while the ingress stage is paused — exactly what a checkpoint capture or a
// recovery re-wiring does around Relink — frames keep arriving off the wire.
// Deliver must park them in the bounded pending buffer and return promptly
// instead of wedging the connection's read loop (which would also stall
// exception traffic sharing the socket), and every parked frame must be
// emitted in arrival order once the stage resumes.
func TestIngressBuffersDuringRewiring(t *testing.T) {
	ing := NewIngress(1, 8) // tiny engine-side buffer: overflow is immediate
	eng := pipeline.New(clock.NewScaled(1000))
	inSt, err := eng.AddSourceStage("ingress", 0, ing, pipeline.StageConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var got []int
	coll := &collectProc{fn: func(v any) {
		mu.Lock()
		got = append(got, v.(int))
		mu.Unlock()
	}}
	collSt, err := eng.AddProcessorStage("collect", 0, coll, pipeline.StageConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Connect(inSt, collSt, nil); err != nil {
		t.Fatal(err)
	}
	runDone := make(chan error, 1)
	go func() { runDone <- eng.Run(context.Background()) }()

	// Prove the stream is flowing, then pause the ingress stage the way a
	// recovery holds it while links are re-wired.
	ing.Deliver(Message{Kind: KindPacket, Value: 0, Items: 1, WireSize: 8})
	deadline := time.Now().Add(10 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first frame never reached the collector")
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := inSt.Pause(ctx); err != nil {
		t.Fatal(err)
	}

	// The wire does not stop during a re-wiring: push far more frames than
	// the engine-side channel holds. Every Deliver must return without the
	// stage consuming anything.
	const n = 100
	delivered := make(chan struct{})
	go func() {
		defer close(delivered)
		for v := 1; v <= n; v++ {
			ing.Deliver(Message{Kind: KindPacket, Value: v, Items: 1, WireSize: 8})
		}
	}()
	select {
	case <-delivered:
	case <-time.After(10 * time.Second):
		t.Fatal("Deliver wedged the connection read loop while the stage was paused for re-wiring")
	}

	// Relink done: resume, end the stream, and require zero loss in order.
	if err := inSt.Resume(); err != nil {
		t.Fatal(err)
	}
	ing.Deliver(Message{Kind: KindPacket, Final: true})
	select {
	case err := <-runDone:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("pipeline did not finish after resume")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != n+1 {
		t.Fatalf("collector got %d frames, want %d", len(got), n+1)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("frame %d out of order: got value %d", i, v)
		}
	}
}
