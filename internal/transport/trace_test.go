package transport

import (
	"context"
	"sync"
	"testing"
	"time"

	"github.com/gates-middleware/gates/internal/clock"
	"github.com/gates-middleware/gates/internal/obs"
	"github.com/gates-middleware/gates/internal/pipeline"
)

// TestCodecTraceContextRoundTrip checks the trace context — lineage birth
// time, trace id, hop count — survives Encode/Decode unchanged.
func TestCodecTraceContextRoundTrip(t *testing.T) {
	birth := time.Date(2000, 1, 1, 0, 0, 3, 500, time.UTC)
	pkt := &pipeline.Packet{Seq: 9, Birth: birth, TraceID: 0xDEADBEEF, TraceHops: 2}
	b, err := Encode(PacketMessage(pkt))
	if err != nil {
		t.Fatal(err)
	}
	m, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	got := m.Packet()
	if !got.Birth.Equal(birth) || got.TraceID != 0xDEADBEEF || got.TraceHops != 2 {
		t.Fatalf("trace context mangled: birth=%v id=%x hops=%d", got.Birth, got.TraceID, got.TraceHops)
	}
}

// TestTraceContextCrossesTCP sends a traced and an untraced packet through a
// real TCP frame into an Ingress-fed engine and inspects what a downstream
// processor consumes: the traced packet keeps its birth timestamp and trace
// id with the hop count up by one (the ingress counts the node crossing),
// while the untraced packet gets rooted locally rather than inheriting
// anything.
func TestTraceContextCrossesTCP(t *testing.T) {
	birth := time.Date(2000, 1, 1, 0, 0, 1, 0, time.UTC)
	clk := clock.NewScaled(1000)
	ob := obs.New(clk, obs.Config{SampleEvery: 1})

	ingress := NewIngress(1, 16)
	ingress.Tracer = ob.Tracer
	srv, err := Listen("127.0.0.1:0", ingress.Deliver)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	eng := pipeline.New(clk)
	eng.SetObservability(ob)
	inSt, _ := eng.AddSourceStage("ingress", 0, ingress, pipeline.StageConfig{DisableAdaptation: true})
	var mu sync.Mutex
	var got []pipeline.Packet
	rec := &tracingCollector{mu: &mu, out: &got}
	recSt, _ := eng.AddProcessorStage("record", 0, rec, pipeline.StageConfig{DisableAdaptation: true})
	if err := eng.Connect(inSt, recSt, nil); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- eng.Run(context.Background()) }()

	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	traced := &pipeline.Packet{Seq: 1, Birth: birth, TraceID: 42, TraceHops: 1}
	for _, pkt := range []*pipeline.Packet{traced, {Seq: 2}, {Final: true}} {
		if err := cli.Send(PacketMessage(pkt)); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("engine never finished")
	}

	mu.Lock()
	defer mu.Unlock()
	if len(got) != 2 {
		t.Fatalf("downstream consumed %d packets, want 2", len(got))
	}
	tp := got[0]
	if !tp.Birth.Equal(birth) {
		t.Fatalf("traced birth = %v, want the remote source's %v", tp.Birth, birth)
	}
	if tp.TraceID != 42 {
		t.Fatalf("trace id = %d, want 42", tp.TraceID)
	}
	if tp.TraceHops != 2 {
		t.Fatalf("trace hops = %d, want 2 (one crossing counted at ingress)", tp.TraceHops)
	}

	// The untraced packet must not inherit the remote context: the local
	// ingress (a source stage) roots a fresh lineage for it.
	up := got[1]
	if up.Birth.IsZero() || up.Birth.Equal(birth) {
		t.Fatalf("untraced birth = %v, want a fresh local timestamp", up.Birth)
	}
	if up.TraceID == 42 {
		t.Fatal("untraced packet inherited the traced packet's id")
	}
	if up.TraceHops != 0 {
		t.Fatalf("untraced hops = %d, want 0", up.TraceHops)
	}

	// The cross-node span tree kept the propagated context: an
	// "ingress.emit" span recorded under trace 42 at hop 2.
	for _, sp := range ob.Tracer.Spans() {
		if sp.Name == "ingress.emit" && sp.TraceID == 42 && sp.Hop == 2 {
			return
		}
	}
	t.Fatal("no ingress.emit span carries the propagated trace context")
}

// tracingCollector records every packet it consumes.
type tracingCollector struct {
	mu  *sync.Mutex
	out *[]pipeline.Packet
}

func (c *tracingCollector) Init(*pipeline.Context) error { return nil }
func (c *tracingCollector) Process(_ *pipeline.Context, pkt *pipeline.Packet, _ *pipeline.Emitter) error {
	c.mu.Lock()
	*c.out = append(*c.out, *pkt)
	c.mu.Unlock()
	return nil
}
func (c *tracingCollector) Finish(*pipeline.Context, *pipeline.Emitter) error { return nil }
