package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"runtime/pprof"
	"sync"
	"sync/atomic"
)

// labelTransport tags the calling goroutine with stage=transport so the
// obs.Profiler attributes framing/decoding CPU to the network plane rather
// than leaving it unlabeled.
func labelTransport() {
	pprof.SetGoroutineLabels(pprof.WithLabels(context.Background(),
		pprof.Labels("stage", "transport")))
}

// Handler consumes messages arriving at a Server.
type Handler func(Message)

// Server accepts stage-to-stage connections and dispatches every decoded
// message to its handler. It is the listening half of a GATES grid-service
// instance's network endpoint.
type Server struct {
	ln      net.Listener
	handler Handler

	framesIn  atomic.Uint64
	bytesIn   atomic.Uint64
	framesOut atomic.Uint64 // broadcast (exception) frames written back
	bytesOut  atomic.Uint64

	mu      sync.Mutex
	writeMu sync.Mutex
	conns   map[net.Conn]bool
	closed  bool
	wg      sync.WaitGroup
}

// Listen starts a server on addr ("host:port"; ":0" picks a free port).
func Listen(addr string, handler Handler) (*Server, error) {
	if handler == nil {
		return nil, errors.New("transport: Listen requires a handler")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln, handler: handler, conns: make(map[net.Conn]bool)}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	labelTransport()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	labelTransport()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	// One reusable frame buffer per connection: Decode's gob layer copies
	// everything it keeps, so the scratch can back the very next frame.
	var scratch []byte
	for {
		frame, err := readFrameReuse(conn, &scratch)
		if err != nil {
			return // EOF or broken peer: connection ends
		}
		s.framesIn.Add(1)
		s.bytesIn.Add(uint64(len(frame)))
		msg, err := Decode(frame)
		if err != nil {
			return // corrupt peer: drop the connection
		}
		s.handler(msg)
	}
}

// Broadcast writes one message back to every live upstream connection —
// the §4 control plane over TCP: a stage host reports its over/under-load
// exceptions "to the sending server" on the connections that feed it.
// Broken peers are dropped silently (their read side ends the connection).
func (s *Server) Broadcast(m Message) error {
	// Encode once into a pooled buffer (header + payload contiguous) and
	// write the same bytes to every connection in one Write each.
	buf := getEncBuf()
	defer putEncBuf(buf)
	n, err := appendFrame(buf, m)
	if err != nil {
		return err
	}
	s.mu.Lock()
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		s.writeMu.Lock()
		_, err := c.Write(buf.Bytes())
		s.writeMu.Unlock()
		if err != nil {
			c.Close()
			continue
		}
		s.framesOut.Add(1)
		s.bytesOut.Add(uint64(n))
	}
	return nil
}

// Close stops accepting, closes every live connection, and waits for the
// serving goroutines to drain. It is idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return err
}

// Client is the sending half of a stage-to-stage connection. It is safe for
// concurrent use. Messages the peer writes back (load exceptions) are
// consumed by ReadLoop.
type Client struct {
	framesOut atomic.Uint64
	bytesOut  atomic.Uint64

	mu   sync.Mutex
	conn net.Conn
}

// ReadLoop consumes messages the server writes back on this connection,
// dispatching each to handler; it returns when the connection closes. Run
// it in its own goroutine to receive the downstream host's load exceptions.
func (c *Client) ReadLoop(handler Handler) {
	c.mu.Lock()
	conn := c.conn
	c.mu.Unlock()
	if conn == nil || handler == nil {
		return
	}
	labelTransport()
	var scratch []byte
	for {
		frame, err := readFrameReuse(conn, &scratch)
		if err != nil {
			return
		}
		m, err := Decode(frame)
		if err != nil {
			return
		}
		handler(m)
	}
}

// Dial connects to a Server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return &Client{conn: conn}, nil
}

// Send encodes and frames one message: one pooled buffer, one coalesced
// conn.Write carrying header and payload together.
func (c *Client) Send(m Message) error {
	buf := getEncBuf()
	defer putEncBuf(buf)
	n, err := appendFrame(buf, m)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return errors.New("transport: client closed")
	}
	if _, err := c.conn.Write(buf.Bytes()); err != nil {
		return fmt.Errorf("transport: write frame: %w", err)
	}
	c.framesOut.Add(1)
	c.bytesOut.Add(uint64(n))
	return nil
}

// SendBatch encodes every message into one pooled buffer and flushes all
// frames in a single write under a single lock acquisition. Peers decode
// the result exactly as a sequence of Send calls; order is preserved.
func (c *Client) SendBatch(msgs []Message) error {
	if len(msgs) == 0 {
		return nil
	}
	buf := getEncBuf()
	defer putEncBuf(buf)
	var total uint64
	for _, m := range msgs {
		n, err := appendFrame(buf, m)
		if err != nil {
			return err
		}
		total += uint64(n)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return errors.New("transport: client closed")
	}
	if _, err := c.conn.Write(buf.Bytes()); err != nil {
		return fmt.Errorf("transport: write frames: %w", err)
	}
	c.framesOut.Add(uint64(len(msgs)))
	c.bytesOut.Add(total)
	return nil
}

// CloseWrite half-closes the connection: the peer observes end-of-stream
// only after draining every frame already sent, while exception traffic
// flowing back stays readable here. Use it (followed by waiting for
// ReadLoop to end) instead of an immediate Close when reverse traffic may
// be in flight: fully closing a socket with unread data queued locally
// resets the connection, and the reset can destroy frames — including the
// end-of-stream marker — that the peer has not yet read.
func (c *Client) CloseWrite() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	if cw, ok := c.conn.(interface{ CloseWrite() error }); ok {
		return cw.CloseWrite()
	}
	return nil
}

// Close shuts the connection down. It is idempotent.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}
