package transport

import (
	"context"
	"fmt"

	"github.com/gates-middleware/gates/internal/adapt"
	"github.com/gates-middleware/gates/internal/pipeline"
)

// Egress is a pipeline Processor that forwards everything it receives to a
// remote host — the sending side of a cross-machine pipeline edge. Load
// exceptions arriving back from the remote side should be fed to the local
// upstream controller by the host program (see cmd/gates-node).
type Egress struct {
	client *Client
}

// NewEgress returns an egress bridge over an established client.
func NewEgress(c *Client) *Egress { return &Egress{client: c} }

// Init implements pipeline.Processor.
func (e *Egress) Init(*pipeline.Context) error { return nil }

// Process forwards one packet to the remote host.
func (e *Egress) Process(_ *pipeline.Context, pkt *pipeline.Packet, _ *pipeline.Emitter) error {
	return e.client.Send(PacketMessage(pkt))
}

// Finish forwards the end-of-stream marker.
func (e *Egress) Finish(*pipeline.Context, *pipeline.Emitter) error {
	return e.client.Send(PacketMessage(&pipeline.Packet{Final: true}))
}

// Ingress is a pipeline Source that injects packets received from the
// network into a local engine. Construct it, point a Server's handler at
// Deliver, and add it as a source stage. Run ends after ExpectFinals final
// markers (one per remote upstream instance) have arrived.
type Ingress struct {
	// ExpectFinals is how many Final markers end the stream. Zero means
	// one.
	ExpectFinals int
	// OnException, when non-nil, receives load exceptions sent by the
	// remote side (for delivery to a local upstream controller).
	OnException func(adapt.Exception)

	ch chan *pipeline.Packet
}

// NewIngress returns an ingress expecting the given number of final markers,
// buffering up to buf packets between the network and the engine.
func NewIngress(expectFinals, buf int) *Ingress {
	if expectFinals < 1 {
		expectFinals = 1
	}
	if buf < 1 {
		buf = 64
	}
	return &Ingress{ExpectFinals: expectFinals, ch: make(chan *pipeline.Packet, buf)}
}

// Deliver is the Server handler: it routes packets into the engine and
// exceptions to OnException.
func (i *Ingress) Deliver(m Message) {
	switch m.Kind {
	case KindPacket:
		i.ch <- m.Packet()
	case KindException:
		if i.OnException != nil {
			i.OnException(m.Exception)
		}
	}
}

// Run implements pipeline.Source: it emits received packets until the
// expected number of final markers has arrived.
func (i *Ingress) Run(ctx *pipeline.Context, out *pipeline.Emitter) error {
	finals := 0
	for {
		select {
		case <-ctx.Done():
			return context.Cause(ctx.Ctx())
		case pkt := <-i.ch:
			if pkt.Final {
				finals++
				if finals >= i.ExpectFinals {
					return nil
				}
				continue
			}
			if err := out.Emit(pkt); err != nil {
				return fmt.Errorf("transport: ingress emit: %w", err)
			}
		}
	}
}
