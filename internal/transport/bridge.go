package transport

import (
	"context"
	"fmt"
	"sync"

	"github.com/gates-middleware/gates/internal/adapt"
	"github.com/gates-middleware/gates/internal/obs"
	"github.com/gates-middleware/gates/internal/pipeline"
)

// Egress is a pipeline Processor that forwards everything it receives to a
// remote host — the sending side of a cross-machine pipeline edge. Load
// exceptions arriving back from the remote side should be fed to the local
// upstream controller by the host program (see cmd/gates-node).
//
// With Batch > 1, packets are coalesced and flushed as one vectored write
// per Batch packets (and at Finish), trading bounded per-packet latency for
// one syscall per batch instead of two per packet.
type Egress struct {
	client *Client
	// Batch is the number of packets coalesced per flush. 0 or 1 sends
	// every packet immediately.
	Batch int
	// Tracer, when non-nil, records a forced "egress.send" span for
	// packets that carry a trace id — the sending end of a cross-node
	// span tree.
	Tracer *obs.Tracer

	pending []Message // only touched by the owning stage goroutine
}

// NewEgress returns an egress bridge over an established client.
func NewEgress(c *Client) *Egress { return &Egress{client: c} }

// NewEgressBatch returns an egress bridge that coalesces batch packets per
// network flush.
func NewEgressBatch(c *Client, batch int) *Egress {
	return &Egress{client: c, Batch: batch}
}

// Init implements pipeline.Processor.
func (e *Egress) Init(*pipeline.Context) error { return nil }

// Process forwards one packet to the remote host, coalescing per Batch.
func (e *Egress) Process(_ *pipeline.Context, pkt *pipeline.Packet, _ *pipeline.Emitter) error {
	sp := e.Tracer.StartTraced("egress.send", pkt.TraceID, pkt.TraceHops)
	defer sp.End()
	if e.Batch <= 1 {
		return e.client.Send(PacketMessage(pkt))
	}
	e.pending = append(e.pending, PacketMessage(pkt))
	if len(e.pending) >= e.Batch {
		return e.flush()
	}
	return nil
}

// Finish flushes any coalesced packets and forwards the end-of-stream
// marker in the same write.
func (e *Egress) Finish(*pipeline.Context, *pipeline.Emitter) error {
	e.pending = append(e.pending, Message{Kind: KindPacket, Final: true})
	return e.flush()
}

func (e *Egress) flush() error {
	if len(e.pending) == 0 {
		return nil
	}
	err := e.client.SendBatch(e.pending)
	e.pending = e.pending[:0]
	return err
}

// Ingress is a pipeline Source that injects packets received from the
// network into a local engine. Construct it, point a Server's handler at
// Deliver, and add it as a source stage. Run ends after ExpectFinals final
// markers (one per remote upstream instance) have arrived.
//
// The wire does not stop when the engine side does: while the ingress stage
// is paused — a checkpoint capture, or a recovery holding it across a Relink
// — frames keep arriving. Deliver parks the overflow in a bounded pending
// buffer (pendingFactor times the channel depth) instead of wedging the
// connection's read loop, which would also stall exception traffic sharing
// the socket; the parked frames drain in arrival order once the stage
// resumes. Only with both the channel and the parking lot full does Deliver
// block — backpressure is the last resort, not the first.
type Ingress struct {
	// ExpectFinals is how many Final markers end the stream. Zero means
	// one.
	ExpectFinals int
	// OnException, when non-nil, receives load exceptions sent by the
	// remote side (for delivery to a local upstream controller).
	OnException func(adapt.Exception)
	// Tracer, when non-nil, samples an "ingress.emit" span around each
	// packet's hand-off into the local engine — the receiving end of the
	// hot-path trace chain (stage → emitter → link → ingress).
	Tracer *obs.Tracer

	ch   chan *pipeline.Packet
	done chan struct{} // closed when Run returns; Deliver stops blocking
	kick chan struct{} // cap 1: tells Run the parking lot has frames

	mu      sync.Mutex
	cond    *sync.Cond // signaled when the parking lot gains room or closes
	pending []*pipeline.Packet
	maxPend int
	closed  bool // Run returned; park nothing further
}

// pendingFactor sizes the pause-overflow parking lot relative to the
// engine-side channel: deep enough to ride out a checkpoint or recovery
// re-wiring at line rate, small enough to stay a bounded buffer.
const pendingFactor = 16

// NewIngress returns an ingress expecting the given number of final markers,
// buffering up to buf packets between the network and the engine.
func NewIngress(expectFinals, buf int) *Ingress {
	if expectFinals < 1 {
		expectFinals = 1
	}
	if buf < 1 {
		buf = 64
	}
	i := &Ingress{
		ExpectFinals: expectFinals,
		ch:           make(chan *pipeline.Packet, buf),
		done:         make(chan struct{}),
		kick:         make(chan struct{}, 1),
		maxPend:      pendingFactor * buf,
	}
	i.cond = sync.NewCond(&i.mu)
	return i
}

// Deliver is the Server handler: it routes packets into the engine and
// exceptions to OnException. Once Run has returned — the stream ended or
// the engine was torn down — further packets are dropped rather than
// blocking, so Server.Close can always drain its serving goroutines.
func (i *Ingress) Deliver(m Message) {
	switch m.Kind {
	case KindPacket:
		pkt := pipeline.GetPacket()
		m.PacketInto(pkt)
		if pkt.TraceID != 0 {
			// One more node crossing on this packet's trace context.
			pkt.TraceHops++
		}
		i.mu.Lock()
		i.drainPendingLocked()
		if len(i.pending) == 0 {
			// Fast path: the channel has room and nothing is parked
			// ahead of this frame.
			select {
			case i.ch <- pkt:
				i.mu.Unlock()
				return
			default:
			}
		}
		// Park behind whatever is already waiting; blocking only when the
		// bounded lot is full keeps arrival order intact either way.
		for len(i.pending) >= i.maxPend && !i.closed {
			i.cond.Wait()
		}
		if i.closed {
			i.mu.Unlock()
			pkt.Release() // stream already ended: recycle the drop
			return
		}
		i.pending = append(i.pending, pkt)
		i.mu.Unlock()
		select {
		case i.kick <- struct{}{}:
		default: // a wake-up is already queued
		}
	case KindException:
		if i.OnException != nil {
			i.OnException(m.Exception)
		}
	}
}

// drainPendingLocked moves parked frames into the channel while both have
// capacity, oldest first. Callers hold i.mu.
func (i *Ingress) drainPendingLocked() {
	moved := false
	for len(i.pending) > 0 {
		select {
		case i.ch <- i.pending[0]:
			i.pending[0] = nil
			i.pending = i.pending[1:]
			moved = true
		default:
			if moved {
				i.cond.Broadcast()
			}
			return
		}
	}
	if moved {
		i.cond.Broadcast()
	}
	i.pending = nil
}

// takeParked pops the oldest parked frame, or nil when the lot is empty.
func (i *Ingress) takeParked() *pipeline.Packet {
	i.mu.Lock()
	defer i.mu.Unlock()
	if len(i.pending) == 0 {
		return nil
	}
	pkt := i.pending[0]
	i.pending[0] = nil
	i.pending = i.pending[1:]
	if len(i.pending) == 0 {
		i.pending = nil
	}
	i.cond.Broadcast()
	return pkt
}

// Run implements pipeline.Source: it emits received packets until the
// expected number of final markers has arrived. It honors stage pauses even
// while idle — Context.PauseRequested wakes it between frames, so a
// checkpoint or recovery never waits on the next network delivery.
func (i *Ingress) Run(ctx *pipeline.Context, out *pipeline.Emitter) error {
	defer func() {
		i.mu.Lock()
		i.closed = true
		for _, pkt := range i.pending {
			pkt.Release()
		}
		i.pending = nil
		i.cond.Broadcast()
		i.mu.Unlock()
		close(i.done)
	}()
	op := i.Tracer.Op("ingress.emit")
	finals := 0
	for {
		select {
		case <-ctx.Done():
			return context.Cause(ctx.Ctx())
		case <-ctx.PauseRequested():
			// Idle pause boundary: park here rather than inside a future
			// emit, so a quiet wire never stalls a checkpoint or recovery.
			if err := ctx.PauseBoundary(); err != nil {
				return err
			}
		case pkt := <-i.ch:
			done, err := i.handle(ctx, out, op, pkt, &finals)
			if done || err != nil {
				return err
			}
		case <-i.kick:
			// Drain the backlog: everything already in the channel is
			// older than anything parked, so empty it first.
			for {
				select {
				case pkt := <-i.ch:
					done, err := i.handle(ctx, out, op, pkt, &finals)
					if done || err != nil {
						return err
					}
					continue
				default:
				}
				pkt := i.takeParked()
				if pkt == nil {
					break
				}
				done, err := i.handle(ctx, out, op, pkt, &finals)
				if done || err != nil {
					return err
				}
			}
		}
	}
}

// handle emits one received frame into the engine, counting final markers.
// It reports done when the expected number of finals has arrived.
func (i *Ingress) handle(ctx *pipeline.Context, out *pipeline.Emitter, op *obs.Op, pkt *pipeline.Packet, finals *int) (bool, error) {
	if pkt.Final {
		*finals++
		pkt.Release()
		return *finals >= i.ExpectFinals, nil
	}
	var sp obs.Span
	if pkt.TraceID != 0 {
		// Traced lineage: force the span so the cross-node span tree
		// stays complete.
		sp = i.Tracer.StartTraced("ingress.emit", pkt.TraceID, pkt.TraceHops)
	} else {
		sp = op.Start()
	}
	// Emit transfers ownership; a local sink may recycle the packet
	// immediately, so read everything the span needs first.
	items := float64(pkt.ItemCount())
	if err := out.Emit(pkt); err != nil {
		return false, fmt.Errorf("transport: ingress emit: %w", err)
	}
	if sp.Sampled() {
		sp.Annotate("items", items)
		sp.End()
	}
	return false, nil
}
