// Package transport carries packets and load exceptions between stage hosts
// over real TCP sockets.
//
// The paper's deployment ran each GATES grid-service instance on its own
// node, exchanging data and control (over/under-load exceptions) over Java
// sockets. This package is the Go equivalent: a length-prefixed binary frame
// layer, a gob message codec for packets and exceptions, and a client/server
// pair with pipeline bridges (Egress forwards a local stage's output to a
// remote host; Ingress feeds packets received from the network into a local
// engine as a Source). The emulated in-process links in netsim remain the
// transport used by the repeatable experiments; TCP mode is for genuinely
// distributed runs (see cmd/gates-node).
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
)

// MaxFrameSize bounds a single frame's payload. Frames beyond it are
// rejected on both sides so a corrupt length prefix cannot trigger an
// enormous allocation.
const MaxFrameSize = 16 << 20

// ErrFrameTooLarge is returned for frames exceeding MaxFrameSize.
var ErrFrameTooLarge = errors.New("transport: frame exceeds MaxFrameSize")

// WriteFrame writes one length-prefixed frame: a 4-byte big-endian payload
// length followed by the payload.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrameSize {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(payload))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("transport: write frame header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("transport: write frame payload: %w", err)
	}
	return nil
}

// WriteFrames writes many length-prefixed frames in one vectored flush: all
// headers and payloads go through a single Buffers.WriteTo, which a net.Conn
// turns into writev. A batch of small messages then costs one syscall
// instead of two per message, which is the dominant per-packet cost of the
// TCP edge for summary-sized payloads. The wire format is identical to
// repeated WriteFrame calls.
func WriteFrames(w io.Writer, payloads [][]byte) error {
	if len(payloads) == 0 {
		return nil
	}
	hdrs := make([]byte, 4*len(payloads))
	bufs := make(net.Buffers, 0, 2*len(payloads))
	for i, p := range payloads {
		if len(p) > MaxFrameSize {
			return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(p))
		}
		hdr := hdrs[4*i : 4*i+4]
		binary.BigEndian.PutUint32(hdr, uint32(len(p)))
		bufs = append(bufs, hdr, p)
	}
	if _, err := bufs.WriteTo(w); err != nil {
		return fmt.Errorf("transport: write frames: %w", err)
	}
	return nil
}

// readFrameReuse reads one length-prefixed frame into *scratch, growing it
// only when a frame exceeds its capacity, and returns the payload aliasing
// *scratch. Steady-state reads therefore allocate nothing. The caller must
// fully consume (or copy from) the payload before the next call.
func readFrameReuse(r io.Reader, scratch *[]byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err // io.EOF passes through for clean stream end
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameSize {
		return nil, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	if uint32(cap(*scratch)) < n {
		*scratch = make([]byte, n)
	}
	payload := (*scratch)[:n]
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("transport: short frame payload: %w", err)
	}
	return payload, nil
}

// ReadFrame reads one length-prefixed frame written by WriteFrame.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err // io.EOF passes through for clean stream end
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameSize {
		return nil, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("transport: short frame payload: %w", err)
	}
	return payload, nil
}
