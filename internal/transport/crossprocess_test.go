package transport

import (
	"context"
	"sync"
	"testing"
	"time"

	"github.com/gates-middleware/gates/internal/adapt"
	"github.com/gates-middleware/gates/internal/apps/countsamps"
	"github.com/gates-middleware/gates/internal/builtin"
	"github.com/gates-middleware/gates/internal/clock"
	"github.com/gates-middleware/gates/internal/metrics"
	"github.com/gates-middleware/gates/internal/pipeline"
	"github.com/gates-middleware/gates/internal/workload"
)

// TestCrossProcessCountSamps runs the distributed count-samps application
// split across two engines joined by real TCP — the gates-node deployment
// shape — and checks the query result survives the hop: source+summarizer
// on the "edge" engine, egress over the wire, ingress+merger on the
// "central" engine.
func TestCrossProcessCountSamps(t *testing.T) {
	builtin.RegisterWireTypes()
	stream := workload.Take(workload.NewZipf(77, 1.5, 50_000), 20_000)
	truth := workload.Counts(stream)
	cost := countsamps.DefaultCostModel()
	cost.SummaryPerItem = 0
	cost.MergePerEntry = 0

	// Central engine: TCP ingress -> merger.
	ingress := NewIngress(1, 64)
	var excMu sync.Mutex
	excs := 0
	ingress.OnException = func(adapt.Exception) {
		excMu.Lock()
		excs++
		excMu.Unlock()
	}
	srv, err := Listen("127.0.0.1:0", ingress.Deliver)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	central := pipeline.New(clock.NewScaled(5000))
	in, _ := central.AddSourceStage("ingress", 0, ingress, pipeline.StageConfig{})
	merger := &countsamps.SummaryMerger{Cost: cost}
	ms, _ := central.AddProcessorStage("merge", 0, merger, pipeline.StageConfig{})
	if err := central.Connect(in, ms, nil); err != nil {
		t.Fatal(err)
	}
	centralDone := make(chan error, 1)
	go func() { centralDone <- central.Run(context.Background()) }()

	// Edge engine: stream -> summarizer -> TCP egress.
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	edge := pipeline.New(clock.NewScaled(5000))
	src, _ := edge.AddSourceStage("stream", 0, &countsamps.StreamSource{
		Values: stream, Batch: 25, ItemWireSize: 8,
	}, pipeline.StageConfig{})
	sum, _ := edge.AddProcessorStage("summarize", 0, countsamps.NewSummarizer(countsamps.SummarizerConfig{
		Cost: cost, SummarySize: 100, Seed: 3,
	}), pipeline.StageConfig{})
	eg, _ := edge.AddProcessorStage("egress", 0, NewEgress(cli), pipeline.StageConfig{})
	edge.Connect(src, sum, nil)
	edge.Connect(sum, eg, nil)
	if err := edge.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	select {
	case err := <-centralDone:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("central engine never finished")
	}

	acc := metrics.TopKAccuracy(truth, merger.TopK(10), 10)
	if acc.Membership < 0.8 {
		t.Fatalf("cross-process accuracy collapsed: %v", acc)
	}
	if merger.Sources() != 1 {
		t.Fatalf("merger saw %d sources, want 1", merger.Sources())
	}
}

// TestExceptionCrossesWireUpstream verifies the control plane: an exception
// sent by the downstream host reaches the upstream stage's controller.
func TestExceptionCrossesWireUpstream(t *testing.T) {
	received := make(chan adapt.Exception, 1)
	ingress := NewIngress(1, 8)
	ingress.OnException = func(e adapt.Exception) { received <- e }
	srv, err := Listen("127.0.0.1:0", ingress.Deliver)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if err := cli.Send(ExceptionMessage(adapt.ExceptionOverload)); err != nil {
		t.Fatal(err)
	}
	select {
	case e := <-received:
		if e != adapt.ExceptionOverload {
			t.Fatalf("received %v, want overload", e)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("exception never crossed the wire")
	}
}
