package transport

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"sync"
	"time"

	"github.com/gates-middleware/gates/internal/adapt"
	"github.com/gates-middleware/gates/internal/pipeline"
)

// MessageKind discriminates wire messages.
type MessageKind uint8

const (
	// KindPacket carries a data (or Final) packet downstream.
	KindPacket MessageKind = iota + 1
	// KindException carries a load exception upstream — the control
	// plane of the self-adaptation algorithm.
	KindException
)

// Message is the unit framed onto a connection: either a packet or an
// exception. Packet Values must be gob-encodable (applications register
// concrete types with gob.Register).
type Message struct {
	Kind MessageKind

	// Packet fields (KindPacket).
	SourceStage    string
	SourceInstance int
	Seq            uint64
	Final          bool
	Items          int
	WireSize       int
	Value          any

	// Trace context (KindPacket): the packet lineage's virtual birth
	// time, its distributed trace id (0 = unsampled), and the node-hop
	// count — the compact context that lets a span tree follow a
	// sampled batch across machines.
	Birth     time.Time
	TraceID   uint64
	TraceHops uint8

	// Exception (KindException).
	Exception adapt.Exception
}

// PacketMessage wraps a pipeline packet for the wire.
func PacketMessage(p *pipeline.Packet) Message {
	return Message{
		Kind:           KindPacket,
		SourceStage:    p.SourceStage,
		SourceInstance: p.SourceInstance,
		Seq:            p.Seq,
		Final:          p.Final,
		Items:          p.Items,
		WireSize:       p.WireSize,
		Value:          p.Value,
		Birth:          p.Birth,
		TraceID:        p.TraceID,
		TraceHops:      p.TraceHops,
	}
}

// ExceptionMessage wraps a load exception for the wire.
func ExceptionMessage(e adapt.Exception) Message {
	return Message{Kind: KindException, Exception: e}
}

// Packet converts a KindPacket message back to a freshly allocated pipeline
// packet. The hot ingress path uses PacketInto with a pooled packet instead.
func (m Message) Packet() *pipeline.Packet {
	p := &pipeline.Packet{}
	m.PacketInto(p)
	return p
}

// PacketInto fills p (typically drawn from the pipeline packet pool) with
// the message's packet fields.
func (m Message) PacketInto(p *pipeline.Packet) {
	p.SourceStage = m.SourceStage
	p.SourceInstance = m.SourceInstance
	p.Seq = m.Seq
	p.Final = m.Final
	p.Items = m.Items
	p.WireSize = m.WireSize
	p.Value = m.Value
	p.Birth = m.Birth
	p.TraceID = m.TraceID
	p.TraceHops = m.TraceHops
}

// Encode serializes m as a self-contained gob blob.
func Encode(m Message) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		return nil, fmt.Errorf("transport: encode message: %w", err)
	}
	return buf.Bytes(), nil
}

// encBufPool recycles frame-encode buffers so steady-state sends allocate
// no buffer memory: a frame write is one pooled buffer plus one coalesced
// conn.Write. The residual allocation is gob's per-Encoder state — gob
// streams are stateful (type descriptors are sent once per encoder), so a
// reusable encoder would change the wire format; each frame stays a
// self-contained blob instead.
var encBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

func getEncBuf() *bytes.Buffer {
	b := encBufPool.Get().(*bytes.Buffer)
	b.Reset()
	return b
}

func putEncBuf(b *bytes.Buffer) { encBufPool.Put(b) }

// appendFrame appends one length-prefixed frame carrying m to buf — the
// 4-byte header is reserved up front and backfilled after encoding, so the
// buffer holds header and payload contiguously and a sequence of
// appendFrame calls is byte-identical to the corresponding
// WriteFrame(Encode(m)) sequence. Returns the payload size in bytes.
func appendFrame(buf *bytes.Buffer, m Message) (int, error) {
	start := buf.Len()
	buf.Write([]byte{0, 0, 0, 0})
	if err := gob.NewEncoder(buf).Encode(m); err != nil {
		buf.Truncate(start)
		return 0, fmt.Errorf("transport: encode message: %w", err)
	}
	n := buf.Len() - start - 4
	if n > MaxFrameSize {
		buf.Truncate(start)
		return 0, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	binary.BigEndian.PutUint32(buf.Bytes()[start:start+4], uint32(n))
	return n, nil
}

// Decode deserializes a blob produced by Encode.
func Decode(b []byte) (Message, error) {
	var m Message
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&m); err != nil {
		return Message{}, fmt.Errorf("transport: decode message: %w", err)
	}
	if m.Kind != KindPacket && m.Kind != KindException {
		return Message{}, fmt.Errorf("transport: unknown message kind %d", m.Kind)
	}
	return m, nil
}
