package transport

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"time"

	"github.com/gates-middleware/gates/internal/adapt"
	"github.com/gates-middleware/gates/internal/pipeline"
)

// MessageKind discriminates wire messages.
type MessageKind uint8

const (
	// KindPacket carries a data (or Final) packet downstream.
	KindPacket MessageKind = iota + 1
	// KindException carries a load exception upstream — the control
	// plane of the self-adaptation algorithm.
	KindException
)

// Message is the unit framed onto a connection: either a packet or an
// exception. Packet Values must be gob-encodable (applications register
// concrete types with gob.Register).
type Message struct {
	Kind MessageKind

	// Packet fields (KindPacket).
	SourceStage    string
	SourceInstance int
	Seq            uint64
	Final          bool
	Items          int
	WireSize       int
	Value          any

	// Trace context (KindPacket): the packet lineage's virtual birth
	// time, its distributed trace id (0 = unsampled), and the node-hop
	// count — the compact context that lets a span tree follow a
	// sampled batch across machines.
	Birth     time.Time
	TraceID   uint64
	TraceHops uint8

	// Exception (KindException).
	Exception adapt.Exception
}

// PacketMessage wraps a pipeline packet for the wire.
func PacketMessage(p *pipeline.Packet) Message {
	return Message{
		Kind:           KindPacket,
		SourceStage:    p.SourceStage,
		SourceInstance: p.SourceInstance,
		Seq:            p.Seq,
		Final:          p.Final,
		Items:          p.Items,
		WireSize:       p.WireSize,
		Value:          p.Value,
		Birth:          p.Birth,
		TraceID:        p.TraceID,
		TraceHops:      p.TraceHops,
	}
}

// ExceptionMessage wraps a load exception for the wire.
func ExceptionMessage(e adapt.Exception) Message {
	return Message{Kind: KindException, Exception: e}
}

// Packet converts a KindPacket message back to a pipeline packet.
func (m Message) Packet() *pipeline.Packet {
	return &pipeline.Packet{
		SourceStage:    m.SourceStage,
		SourceInstance: m.SourceInstance,
		Seq:            m.Seq,
		Final:          m.Final,
		Items:          m.Items,
		WireSize:       m.WireSize,
		Value:          m.Value,
		Birth:          m.Birth,
		TraceID:        m.TraceID,
		TraceHops:      m.TraceHops,
	}
}

// Encode serializes m as a self-contained gob blob.
func Encode(m Message) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		return nil, fmt.Errorf("transport: encode message: %w", err)
	}
	return buf.Bytes(), nil
}

// Decode deserializes a blob produced by Encode.
func Decode(b []byte) (Message, error) {
	var m Message
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&m); err != nil {
		return Message{}, fmt.Errorf("transport: decode message: %w", err)
	}
	if m.Kind != KindPacket && m.Kind != KindException {
		return Message{}, fmt.Errorf("transport: unknown message kind %d", m.Kind)
	}
	return m, nil
}
